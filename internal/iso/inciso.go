package iso

// IncIsoMat: incremental maintenance of the embedding set under edge
// updates. Theorem 7.1 shows the problem is unbounded (and NP-complete for
// fixed data graphs), so no bounded algorithm exists; this engine is the
// natural affected-area heuristic the paper's analysis frames: deletions
// drop the embeddings using the deleted edge, insertions enumerate
// embeddings anchored on the inserted edge. Its per-update cost is the
// anchored search cost — exponential in the worst case, exactly as
// Theorem 7.1 predicts.

import (
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// Engine maintains Miso(P, G) under edge updates (IncIsoMat).
type Engine struct {
	p *pattern.Pattern
	// g is the graph the anchored searches read and the unit updates
	// mutate: the owned graph passed to NewEngine, or a private overlay
	// over a shared base (NewEngineShared).
	g          graph.Mutable
	ov         *graph.Overlay // the private overlay (nil in owned mode)
	pedges     []pattern.Edge
	embeddings map[string]Embedding
	// edgeUse[dataEdge] = embedding keys with some pattern edge mapped to it.
	edgeUse map[[2]graph.NodeID]map[string]bool
}

// NewEngine computes the initial embedding set with the batch enumerator.
// The pattern must be normal. The engine owns g: all updates must go
// through Insert/Delete/Apply.
func NewEngine(p *pattern.Pattern, g *graph.Graph) *Engine {
	return buildEngine(p, g, nil)
}

// NewEngineShared builds an engine that reads base through a private
// update overlay instead of owning a graph replica. Unit updates
// accumulate in the overlay; after driving one batch of them, the caller
// must invoke Commit and then apply the same effective updates to base
// before the next batch (contq's Registry follows this protocol).
func NewEngineShared(p *pattern.Pattern, base graph.View) *Engine {
	ov := graph.NewOverlay(base)
	return buildEngine(p, ov, ov)
}

func buildEngine(p *pattern.Pattern, g graph.Mutable, ov *graph.Overlay) *Engine {
	e := &Engine{
		p:          p,
		g:          g,
		ov:         ov,
		pedges:     p.Edges(),
		embeddings: make(map[string]Embedding),
		edgeUse:    make(map[[2]graph.NodeID]map[string]bool),
	}
	for _, em := range Enumerate(p, g, 0) {
		e.add(em)
	}
	return e
}

// Commit ends one batch of unit updates on a shared engine: it discards
// the overlay diff, after which the base owner must apply those updates to
// the base. A no-op on owned engines.
func (e *Engine) Commit() {
	if e.ov != nil {
		e.ov.Reset()
	}
}

// SharedBase returns the base view a shared engine reads through, nil for
// an owned engine.
func (e *Engine) SharedBase() graph.View {
	if e.ov == nil {
		return nil
	}
	return e.ov.Base()
}

func (e *Engine) add(em Embedding) bool {
	key := em.Key()
	if _, ok := e.embeddings[key]; ok {
		return false
	}
	e.embeddings[key] = em
	for _, pe := range e.pedges {
		edge := [2]graph.NodeID{em[pe.From], em[pe.To]}
		if e.edgeUse[edge] == nil {
			e.edgeUse[edge] = make(map[string]bool)
		}
		e.edgeUse[edge][key] = true
	}
	return true
}

func (e *Engine) remove(key string) {
	em, ok := e.embeddings[key]
	if !ok {
		return
	}
	delete(e.embeddings, key)
	for _, pe := range e.pedges {
		edge := [2]graph.NodeID{em[pe.From], em[pe.To]}
		if uses := e.edgeUse[edge]; uses != nil {
			delete(uses, key)
			if len(uses) == 0 {
				delete(e.edgeUse, edge)
			}
		}
	}
}

// Count returns |Miso(P, G)| (number of embeddings).
func (e *Engine) Count() int { return len(e.embeddings) }

// Embeddings returns the current embeddings in unspecified order.
func (e *Engine) Embeddings() []Embedding {
	out := make([]Embedding, 0, len(e.embeddings))
	for _, em := range e.embeddings {
		out = append(out, em)
	}
	return out
}

// Insert adds edge (v0, v1) and discovers the new embeddings, all of which
// must map at least one pattern edge onto the inserted edge — the search is
// anchored there, once per pattern edge.
func (e *Engine) Insert(v0, v1 graph.NodeID) bool {
	ok, _ := e.InsertDelta(v0, v1)
	return ok
}

// InsertDelta is Insert additionally returning the embeddings the
// insertion created — the ΔM of IncIsoMat's insertion case.
func (e *Engine) InsertDelta(v0, v1 graph.NodeID) (bool, []Embedding) {
	added, err := e.g.AddEdge(v0, v1)
	if err != nil || !added {
		return false, nil
	}
	var newEms []Embedding
	for _, pe := range e.pedges {
		// A self-loop pattern edge can only map to a data self-loop, and a
		// data self-loop can only host a self-loop pattern edge.
		if (pe.From == pe.To) != (v0 == v1) {
			continue
		}
		s := newSearch(e.p, e.g, 0)
		s.run(map[int]graph.NodeID{pe.From: v0, pe.To: v1})
		for _, em := range s.found {
			if e.add(em) {
				newEms = append(newEms, em)
			}
		}
	}
	return true, newEms
}

// Delete removes edge (v0, v1) and drops every embedding that used it.
func (e *Engine) Delete(v0, v1 graph.NodeID) bool {
	ok, _ := e.DeleteDelta(v0, v1)
	return ok
}

// DeleteDelta is Delete additionally returning the embeddings the deletion
// destroyed — the ΔM of IncIsoMat's deletion case.
func (e *Engine) DeleteDelta(v0, v1 graph.NodeID) (bool, []Embedding) {
	if !e.g.RemoveEdge(v0, v1) {
		return false, nil
	}
	var dropped []Embedding
	if uses := e.edgeUse[[2]graph.NodeID{v0, v1}]; uses != nil {
		keys := make([]string, 0, len(uses))
		for k := range uses {
			keys = append(keys, k)
		}
		for _, k := range keys {
			dropped = append(dropped, e.embeddings[k])
			e.remove(k)
		}
	}
	return true, dropped
}

// Apply processes a batch of updates one at a time, committing the batch
// at the end (shared engines discard their overlay diff).
func (e *Engine) Apply(ups []graph.Update) {
	for _, up := range ups {
		if up.Op == graph.InsertEdge {
			e.Insert(up.From, up.To)
		} else {
			e.Delete(up.From, up.To)
		}
	}
	e.Commit()
}
