// Package iso implements subgraph isomorphism for normal patterns: a
// VF2-style enumerator (the paper's batch baseline, Cordella et al. 2004)
// and the incremental maintenance engine IncIsoMat whose unboundedness
// Section 7 proves. Matching follows the paper's definition: an injective
// mapping f from pattern nodes to data nodes such that f(v) satisfies the
// predicate of v and every pattern edge maps to a data edge (the match is
// the subgraph induced by the image of f).
package iso

import (
	"sort"

	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// Embedding maps each pattern node (by index) to a data node.
type Embedding []graph.NodeID

// Key returns a canonical comparable form of the embedding.
func (em Embedding) Key() string {
	b := make([]byte, 0, len(em)*4)
	for _, v := range em {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// Enumerate returns all embeddings of p in g, up to limit (limit <= 0 means
// unlimited). The pattern must be normal; bounds are ignored.
func Enumerate(p *pattern.Pattern, g graph.View, limit int) []Embedding {
	s := newSearch(p, g, limit)
	s.run(nil)
	return s.found
}

// Count returns the number of embeddings of p in g.
func Count(p *pattern.Pattern, g graph.View) int {
	return len(Enumerate(p, g, 0))
}

// Has reports whether at least one embedding exists (P ⊴iso G).
func Has(p *pattern.Pattern, g graph.View) bool {
	return len(Enumerate(p, g, 1)) > 0
}

// search carries the VF2 state: a partial mapping extended one pattern node
// at a time along a connectivity-first order, with predicate, degree and
// edge-consistency pruning.
type search struct {
	p     *pattern.Pattern
	g     graph.View
	limit int
	order []int // pattern nodes in search order
	// anchor: pattern-node → fixed data node (used by incremental search).
	anchor map[int]graph.NodeID

	mapped  []graph.NodeID // pattern node → data node or -1
	used    map[graph.NodeID]bool
	found   []Embedding
	visited int64 // search-tree nodes, for cost reporting
}

func newSearch(p *pattern.Pattern, g graph.View, limit int) *search {
	s := &search{
		p:     p,
		g:     g,
		limit: limit,
		used:  make(map[graph.NodeID]bool),
	}
	s.mapped = make([]graph.NodeID, p.NumNodes())
	for i := range s.mapped {
		s.mapped[i] = -1
	}
	s.order = searchOrder(p)
	return s
}

// searchOrder picks a connectivity-first ordering: start from the highest
// degree pattern node, then repeatedly take the unvisited node with the
// most already-ordered neighbours (ties by degree).
func searchOrder(p *pattern.Pattern) []int {
	np := p.NumNodes()
	ordered := make([]bool, np)
	order := make([]int, 0, np)
	deg := func(u int) int { return len(p.Out(u)) + len(p.In(u)) }
	for len(order) < np {
		best, bestScore, bestDeg := -1, -1, -1
		for u := 0; u < np; u++ {
			if ordered[u] {
				continue
			}
			score := 0
			for _, w := range p.Out(u) {
				if ordered[w] {
					score++
				}
			}
			for _, w := range p.In(u) {
				if ordered[w] {
					score++
				}
			}
			if score > bestScore || (score == bestScore && deg(u) > bestDeg) {
				best, bestScore, bestDeg = u, score, deg(u)
			}
		}
		ordered[best] = true
		order = append(order, best)
	}
	return order
}

// run explores the search tree. anchor (optional) pre-commits some pattern
// nodes to data nodes.
func (s *search) run(anchor map[int]graph.NodeID) {
	s.anchor = anchor
	s.extend(0)
}

func (s *search) done() bool {
	return s.limit > 0 && len(s.found) >= s.limit
}

func (s *search) extend(depth int) {
	if s.done() {
		return
	}
	if depth == len(s.order) {
		em := make(Embedding, len(s.mapped))
		copy(em, s.mapped)
		s.found = append(s.found, em)
		return
	}
	u := s.order[depth]
	for _, v := range s.candidates(u) {
		if s.used[v] || !s.feasible(u, v) {
			continue
		}
		s.mapped[u] = v
		s.used[v] = true
		s.visited++
		s.extend(depth + 1)
		s.used[v] = false
		s.mapped[u] = -1
		if s.done() {
			return
		}
	}
}

// candidates returns data nodes to try for pattern node u: the anchored
// node if fixed, otherwise neighbours of already-mapped pattern neighbours,
// otherwise every node.
func (s *search) candidates(u int) []graph.NodeID {
	if v, ok := s.anchor[u]; ok {
		return []graph.NodeID{v}
	}
	// Prefer extending along a mapped pattern neighbour: candidates are the
	// corresponding data neighbours.
	for _, w := range s.p.In(u) {
		if s.mapped[w] >= 0 {
			return s.g.Out(s.mapped[w])
		}
	}
	for _, w := range s.p.Out(u) {
		if s.mapped[w] >= 0 {
			return s.g.In(s.mapped[w])
		}
	}
	all := make([]graph.NodeID, s.g.NumNodes())
	for i := range all {
		all[i] = i
	}
	return all
}

// feasible checks predicate, degree and edge consistency of assigning v to u.
func (s *search) feasible(u int, v graph.NodeID) bool {
	if !s.p.Pred(u).Eval(s.g.Attrs(v)) {
		return false
	}
	if s.g.OutDegree(v) < s.p.OutDegree(u) || s.g.InDegree(v) < len(s.p.In(u)) {
		return false
	}
	for _, w := range s.p.Out(u) {
		if w == u { // pattern self-loop: the image needs a data self-loop
			if !s.g.HasEdge(v, v) {
				return false
			}
			continue
		}
		if x := s.mapped[w]; x >= 0 && !s.g.HasEdge(v, x) {
			return false
		}
	}
	for _, w := range s.p.In(u) {
		if w == u {
			continue // already checked via the Out loop
		}
		if x := s.mapped[w]; x >= 0 && !s.g.HasEdge(x, v) {
			return false
		}
	}
	return true
}

// enumerateBrute enumerates embeddings by trying every injective assignment
// — the test reference, exponential and only usable on tiny inputs.
func enumerateBrute(p *pattern.Pattern, g graph.View) []Embedding {
	np, n := p.NumNodes(), g.NumNodes()
	var found []Embedding
	mapped := make([]graph.NodeID, np)
	used := make([]bool, n)
	var rec func(u int)
	rec = func(u int) {
		if u == np {
			em := make(Embedding, np)
			copy(em, mapped)
			found = append(found, em)
			return
		}
		for v := 0; v < n; v++ {
			if used[v] || !p.Pred(u).Eval(g.Attrs(v)) {
				continue
			}
			ok := true
			for _, w := range p.Out(u) {
				if w < u && !g.HasEdge(v, mapped[w]) {
					ok = false
					break
				}
				if w == u && !g.HasEdge(v, v) {
					ok = false
					break
				}
			}
			if ok {
				for _, w := range p.In(u) {
					if w < u && !g.HasEdge(mapped[w], v) {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			mapped[u] = v
			used[v] = true
			rec(u + 1)
			used[v] = false
		}
	}
	rec(0)
	sortEmbeddings(found)
	return found
}

func sortEmbeddings(ems []Embedding) {
	sort.Slice(ems, func(i, j int) bool {
		for k := range ems[i] {
			if ems[i][k] != ems[j][k] {
				return ems[i][k] < ems[j][k]
			}
		}
		return false
	})
}
