package iso

import (
	"sort"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
)

func sortedKeys(ems []Embedding) []string {
	keys := make([]string, 0, len(ems))
	for _, em := range ems {
		keys = append(keys, em.Key())
	}
	sort.Strings(keys)
	return keys
}

// TestSharedEngineMatchesOwned drives an owned engine and a shared engine
// with identical unit-update streams; after each batch the shared base is
// committed (Commit + base apply), and the embedding sets must agree with
// each other and with a fresh enumeration of the final graph.
func TestSharedEngineMatchesOwned(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := generator.Synthetic(40, 120, generator.DefaultSchema(3), seed)
		p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 3, Edges: 2, Preds: 1, K: 1}, seed)
		base := g.Clone()
		owned := NewEngine(p, g.Clone())
		shared := NewEngineShared(p, base)
		if shared.SharedBase() != graph.View(base) {
			t.Fatal("shared engine must read through the base it was given")
		}
		if owned.Count() != shared.Count() {
			t.Fatalf("seed %d: initial counts diverge", seed)
		}

		ups := generator.Updates(g, 20, 20, seed+40)
		for i := 0; i < len(ups); i += 5 {
			end := min(i+5, len(ups))
			batch := ups[i:end]
			for _, up := range batch {
				if up.Op == graph.InsertEdge {
					_, a := owned.InsertDelta(up.From, up.To)
					_, b := shared.InsertDelta(up.From, up.To)
					if len(a) != len(b) {
						t.Fatalf("seed %d: insert deltas diverge at %v", seed, up)
					}
				} else {
					_, a := owned.DeleteDelta(up.From, up.To)
					_, b := shared.DeleteDelta(up.From, up.To)
					if len(a) != len(b) {
						t.Fatalf("seed %d: delete deltas diverge at %v", seed, up)
					}
				}
			}
			// End of batch: discard the shared overlay, commit to the base.
			shared.Commit()
			if _, err := base.ApplyAll(batch); err != nil {
				t.Fatal(err)
			}
			ka, kb := sortedKeys(owned.Embeddings()), sortedKeys(shared.Embeddings())
			if len(ka) != len(kb) {
				t.Fatalf("seed %d: embedding sets diverge after batch %d", seed, i)
			}
			for j := range ka {
				if ka[j] != kb[j] {
					t.Fatalf("seed %d: embedding sets diverge after batch %d", seed, i)
				}
			}
		}
		fresh := sortedKeys(Enumerate(p, base, 0))
		got := sortedKeys(shared.Embeddings())
		if len(fresh) != len(got) {
			t.Fatalf("seed %d: shared engine has %d embeddings, fresh enumeration %d", seed, len(got), len(fresh))
		}
		for j := range fresh {
			if fresh[j] != got[j] {
				t.Fatalf("seed %d: shared engine diverges from fresh enumeration", seed)
			}
		}
	}
}
