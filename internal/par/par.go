// Package par provides the bounded concurrency primitives shared by the
// hot paths of this repository: a process-wide default worker count, a
// parallel-for over dense index ranges with stable worker identities (so
// callers can keep per-worker scratch buffers, the pattern every BFS-heavy
// loop needs), and a small bounded worker pool for irregular task sets.
//
// All primitives are deliberately synchronous: a call returns only after
// every unit of work has finished, so callers never have to reason about
// task lifetimes. Panics raised inside workers are captured and re-raised
// on the calling goroutine.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide default (0 means "use GOMAXPROCS").
var defaultWorkers atomic.Int64

// DefaultWorkers returns the default degree of parallelism: the value set
// by SetDefaultWorkers, or GOMAXPROCS when unset.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultWorkers sets the process-wide default degree of parallelism
// used when a caller passes workers <= 0. Passing n <= 0 resets to
// GOMAXPROCS. CLI front-ends wire their -workers flag here.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Resolve normalizes a caller-supplied worker count against a range of n
// work items: workers <= 0 means the default, and the result never exceeds
// n (spawning more goroutines than items is pure overhead) and never drops
// below 1.
func Resolve(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// chunksPerWorker controls the dynamic-scheduling granularity of For:
// enough chunks per worker that skewed item costs (one giant BFS among
// many small ones) balance out, few enough that the atomic fetch-add is
// amortized.
const chunksPerWorker = 8

// For runs body(worker, i) for every i in [0, n), distributing indices
// across at most `workers` goroutines (workers <= 0 selects the default).
// Worker ids are dense in [0, Resolve(workers, n)), so callers can index
// per-worker scratch allocated with that bound. Chunks are handed out
// dynamically, which keeps the load balanced when item costs are skewed.
// With one worker (or one item) the body runs inline on the caller.
//
// The body must treat distinct indices as independent: For gives no
// ordering guarantee between them.
func For(n, workers int, body func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := Resolve(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	chunk := n / (w * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[panicValue]
	)
	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(worker int) {
			defer wg.Done()
			defer capturePanic(&panicked)
			for {
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					body(worker, i)
				}
			}
		}(wk)
	}
	wg.Wait()
	rethrow(&panicked)
}

// Pool is a bounded worker pool: at most `workers` submitted tasks run
// concurrently; Go blocks when the pool is saturated. The zero value is
// not usable; construct with NewPool.
type Pool struct {
	sem      chan struct{}
	wg       sync.WaitGroup
	panicked atomic.Pointer[panicValue]
}

// NewPool returns a pool running at most `workers` tasks at once
// (workers <= 0 selects the default).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Go submits a task, blocking until a worker slot frees up. Tasks must not
// themselves call Go on the same pool (a saturated pool would deadlock).
func (p *Pool) Go(task func()) {
	p.sem <- struct{}{}
	p.wg.Add(1)
	go func() {
		defer func() {
			<-p.sem
			p.wg.Done()
		}()
		defer capturePanic(&p.panicked)
		task()
	}()
}

// Wait blocks until every submitted task has finished, then re-raises the
// first captured panic, if any. The pool is reusable after Wait.
func (p *Pool) Wait() {
	p.wg.Wait()
	rethrow(&p.panicked)
}

// panicValue boxes a recovered panic so it can travel through an atomic
// pointer (recover() may legitimately return any non-nil value).
type panicValue struct{ v any }

func capturePanic(slot *atomic.Pointer[panicValue]) {
	if r := recover(); r != nil {
		slot.CompareAndSwap(nil, &panicValue{r})
	}
}

func rethrow(slot *atomic.Pointer[panicValue]) {
	if pv := slot.Swap(nil); pv != nil {
		panic(pv.v)
	}
}
