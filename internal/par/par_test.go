package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		for _, n := range []int{0, 1, 3, 100, 1000} {
			hits := make([]int32, n)
			For(n, workers, func(worker, i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForWorkerIDsDense(t *testing.T) {
	n, workers := 1000, 4
	w := Resolve(workers, n)
	seen := make([]int32, w)
	For(n, workers, func(worker, i int) {
		if worker < 0 || worker >= w {
			t.Errorf("worker id %d out of range [0,%d)", worker, w)
			return
		}
		atomic.StoreInt32(&seen[worker], 1)
	})
}

func TestForSerialRunsInline(t *testing.T) {
	order := make([]int, 0, 5)
	For(5, 1, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("serial worker id = %d", worker)
		}
		order = append(order, i) // safe: single worker runs inline
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestForPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	For(100, 4, func(worker, i int) {
		if i == 42 {
			panic("boom")
		}
	})
}

func TestResolve(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{4, 100, 4},
		{4, 2, 2},
		{1, 100, 1},
		{8, 0, 1},
		{-1, 5, min(DefaultWorkers(), 5)},
	}
	for _, c := range cases {
		if got := Resolve(c.workers, c.n); got != c.want {
			t.Errorf("Resolve(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers() = %d after SetDefaultWorkers(3)", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers() = %d after reset", got)
	}
}

func TestPoolBoundedAndComplete(t *testing.T) {
	const workers, tasks = 3, 50
	p := NewPool(workers)
	var running, peak, done int64
	for i := 0; i < tasks; i++ {
		p.Go(func() {
			cur := atomic.AddInt64(&running, 1)
			for {
				old := atomic.LoadInt64(&peak)
				if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
					break
				}
			}
			atomic.AddInt64(&running, -1)
			atomic.AddInt64(&done, 1)
		})
	}
	p.Wait()
	if done != tasks {
		t.Fatalf("completed %d tasks, want %d", done, tasks)
	}
	if peak > workers {
		t.Fatalf("peak concurrency %d exceeds pool bound %d", peak, workers)
	}
}

func TestPoolPropagatesPanic(t *testing.T) {
	p := NewPool(2)
	p.Go(func() { panic("pool boom") })
	defer func() {
		if r := recover(); r != "pool boom" {
			t.Fatalf("recovered %v, want pool boom", r)
		}
	}()
	p.Wait()
}
