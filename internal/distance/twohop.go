package distance

import (
	"sort"

	"gpm/internal/graph"
)

// TwoHop is a 2-hop cover labeling (pruned landmark labeling) over hop
// distances, the "Match with 2-hop" variant of Fig. 17(a,b). Every node v
// stores two label lists: out-labels (distances from v to landmarks) and
// in-labels (distances from landmarks to v); a query merges the two lists.
type TwoHop struct {
	lout [][]labelEntry // lout[v]: (landmark rank, dist v→landmark), sorted by rank
	lin  [][]labelEntry // lin[v]:  (landmark rank, dist landmark→v), sorted by rank
}

type labelEntry struct {
	lm   int32
	dist int32
}

// NewTwoHop builds the labeling with pruned BFS from every node in
// decreasing-degree order — the standard construction. Build time is
// O(|V||E|) worst case but far lower on real graphs thanks to pruning.
func NewTwoHop(g *graph.Graph) *TwoHop {
	n := g.NumNodes()
	t := &TwoHop{
		lout: make([][]labelEntry, n),
		lin:  make([][]labelEntry, n),
	}
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})

	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]graph.NodeID, 0, n)

	for rank, v := range order {
		r32 := int32(rank)
		// Self labels let the pruning query see the landmark itself.
		t.lout[v] = append(t.lout[v], labelEntry{r32, 0})
		t.lin[v] = append(t.lin[v], labelEntry{r32, 0})

		// Pruned forward BFS: dist(v → u) feeds lin[u].
		queue = append(queue[:0], v)
		dist[v] = 0
		visited := []graph.NodeID{v}
		for qi := 0; qi < len(queue); qi++ {
			x := queue[qi]
			d := dist[x]
			if x != v {
				if t.query(v, x) <= int(d) {
					continue // covered by earlier landmarks: prune subtree
				}
				t.lin[x] = append(t.lin[x], labelEntry{r32, d})
			}
			for _, w := range g.Out(x) {
				if dist[w] < 0 {
					dist[w] = d + 1
					visited = append(visited, w)
					queue = append(queue, w)
				}
			}
		}
		for _, x := range visited {
			dist[x] = -1
		}

		// Pruned reverse BFS: dist(u → v) feeds lout[u].
		queue = append(queue[:0], v)
		dist[v] = 0
		visited = visited[:0]
		visited = append(visited, v)
		for qi := 0; qi < len(queue); qi++ {
			x := queue[qi]
			d := dist[x]
			if x != v {
				if t.query(x, v) <= int(d) {
					continue
				}
				t.lout[x] = append(t.lout[x], labelEntry{r32, d})
			}
			for _, w := range g.In(x) {
				if dist[w] < 0 {
					dist[w] = d + 1
					visited = append(visited, w)
					queue = append(queue, w)
				}
			}
		}
		for _, x := range visited {
			dist[x] = -1
		}
	}
	return t
}

// query merges lout[u] and lin[v]; both lists are sorted by landmark rank.
func (t *TwoHop) query(u, v graph.NodeID) int {
	a, b := t.lout[u], t.lin[v]
	best := graph.Unreachable
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].lm < b[j].lm:
			i++
		case a[i].lm > b[j].lm:
			j++
		default:
			if d := int(a[i].dist) + int(b[j].dist); d < best {
				best = d
			}
			i++
			j++
		}
	}
	return best
}

// Dist implements Oracle.
func (t *TwoHop) Dist(u, v graph.NodeID) int {
	if u == v {
		return 0
	}
	return t.query(u, v)
}

// LabelEntries returns the total number of label entries — the index size
// statistic.
func (t *TwoHop) LabelEntries() int {
	n := 0
	for v := range t.lout {
		n += len(t.lout[v]) + len(t.lin[v])
	}
	return n
}

var _ Oracle = (*TwoHop)(nil)
