package distance

import (
	"math"

	"gpm/internal/graph"
	"gpm/internal/par"
)

// Matrix is the all-pairs distance matrix of Section 3 (line 1 of algorithm
// Match), computed with one BFS per node in O(|V|(|V| + |E|)) time and
// O(|V|²) space. Distances are stored as int32; unreachable pairs hold
// unreachable32.
type Matrix struct {
	n    int
	dist []int32 // row-major: dist[u*n+v]
}

const unreachable32 = int32(math.MaxInt32)

// NewMatrix builds the distance matrix of g with the default degree of
// parallelism (par.DefaultWorkers). The per-source BFS runs are
// independent, so the build scales near-linearly with workers.
func NewMatrix(g *graph.Graph) *Matrix {
	return NewMatrixWorkers(g, 0)
}

// NewMatrixWorkers builds the distance matrix of g using the given number
// of workers: 0 selects the default, 1 runs serially.
func NewMatrixWorkers(g *graph.Graph, workers int) *Matrix {
	n := g.NumNodes()
	m := &Matrix{n: n, dist: make([]int32, n*n)}
	w := par.Resolve(workers, n)
	rows := make([][]int, w) // one BFS scratch row per worker, lazily built
	par.For(n, w, func(worker, u int) {
		row := rows[worker]
		if row == nil {
			row = make([]int, n)
			rows[worker] = row
		}
		g.BFSFrom(u, graph.Forward, row)
		base := u * n
		for v, d := range row {
			if d == graph.Unreachable {
				m.dist[base+v] = unreachable32
			} else {
				m.dist[base+v] = int32(d)
			}
		}
	})
	return m
}

// Dist implements Oracle.
func (m *Matrix) Dist(u, v graph.NodeID) int {
	d := m.dist[u*m.n+v]
	if d == unreachable32 {
		return graph.Unreachable
	}
	return int(d)
}

// NumNodes returns the dimension of the matrix.
func (m *Matrix) NumNodes() int { return m.n }

// Bytes returns the memory footprint of the matrix payload.
func (m *Matrix) Bytes() int64 { return int64(len(m.dist)) * 4 }

// WeightedMatrix is the Floyd–Warshall all-pairs matrix for weighted graphs
// — the extension remarked after Theorem 3.1. Weights are supplied per edge;
// they must be non-negative.
type WeightedMatrix struct {
	n    int
	dist []float64
}

// NewWeightedMatrix builds the matrix with Floyd–Warshall in O(|V|³) time.
func NewWeightedMatrix(g *graph.Graph, weight func(u, v graph.NodeID) float64) *WeightedMatrix {
	n := g.NumNodes()
	w := &WeightedMatrix{n: n, dist: make([]float64, n*n)}
	inf := math.Inf(1)
	for i := range w.dist {
		w.dist[i] = inf
	}
	for v := 0; v < n; v++ {
		w.dist[v*n+v] = 0
	}
	g.Edges(func(u, v graph.NodeID) bool {
		if c := weight(u, v); c < w.dist[u*n+v] {
			w.dist[u*n+v] = c
		}
		return true
	})
	for k := 0; k < n; k++ {
		kRow := w.dist[k*n : k*n+n]
		for i := 0; i < n; i++ {
			dik := w.dist[i*n+k]
			if math.IsInf(dik, 1) {
				continue
			}
			iRow := w.dist[i*n : i*n+n]
			for j := 0; j < n; j++ {
				if c := dik + kRow[j]; c < iRow[j] {
					iRow[j] = c
				}
			}
		}
	}
	return w
}

// Dist implements Oracle semantics over rounded weights: the weighted
// distance truncated to int, or graph.Unreachable.
func (w *WeightedMatrix) Dist(u, v graph.NodeID) int {
	d := w.dist[u*w.n+v]
	if math.IsInf(d, 1) {
		return graph.Unreachable
	}
	return int(d)
}

// Weight returns the exact weighted distance (math.Inf(1) if unreachable).
func (w *WeightedMatrix) Weight(u, v graph.NodeID) float64 { return w.dist[u*w.n+v] }
