package distance

import (
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
)

// TestNewMatrixWorkersEquivalence checks that the parallel matrix build
// returns exactly the serial oracle on generator graphs of assorted shapes.
func TestNewMatrixWorkersEquivalence(t *testing.T) {
	graphs := []*graph.Graph{
		generator.Synthetic(200, 800, generator.DefaultSchema(4), 1),
		generator.Synthetic(357, 1200, generator.DefaultSchema(3), 7),
		generator.YouTube(0.01, 3),
		graph.New(), // empty graph
	}
	for gi, g := range graphs {
		serial := NewMatrixWorkers(g, 1)
		for _, workers := range []int{2, 4, 8} {
			parallel := NewMatrixWorkers(g, workers)
			if parallel.NumNodes() != serial.NumNodes() {
				t.Fatalf("graph %d workers %d: NumNodes %d != %d", gi, workers, parallel.NumNodes(), serial.NumNodes())
			}
			for u := 0; u < g.NumNodes(); u++ {
				for v := 0; v < g.NumNodes(); v++ {
					if ps, ss := parallel.Dist(u, v), serial.Dist(u, v); ps != ss {
						t.Fatalf("graph %d workers %d: Dist(%d,%d) = %d, serial %d", gi, workers, u, v, ps, ss)
					}
				}
			}
		}
	}
}

// TestNewMatrixDefaultIsParallelEquivalent checks the exported NewMatrix
// (default workers) against the serial build.
func TestNewMatrixDefaultIsParallelEquivalent(t *testing.T) {
	g := generator.Citation(0.02, 11)
	serial := NewMatrixWorkers(g, 1)
	def := NewMatrix(g)
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			if ds, ss := def.Dist(u, v), serial.Dist(u, v); ds != ss {
				t.Fatalf("Dist(%d,%d) = %d, serial %d", u, v, ds, ss)
			}
		}
	}
}
