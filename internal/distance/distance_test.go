package distance

import (
	"testing"

	"gpm/internal/generator"
	"gpm/internal/graph"
)

func chainGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(nil)
		if i > 0 {
			g.AddEdge(i-1, i)
		}
	}
	return g
}

func TestMatrixAgainstBFSOnChain(t *testing.T) {
	g := chainGraph(6)
	m := NewMatrix(g)
	b := NewBFS(g)
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			want := graph.Unreachable
			if v >= u {
				want = v - u
			}
			if d := m.Dist(u, v); d != want {
				t.Errorf("matrix Dist(%d,%d) = %d, want %d", u, v, d, want)
			}
			if d := b.Dist(u, v); d != want {
				t.Errorf("bfs Dist(%d,%d) = %d, want %d", u, v, d, want)
			}
		}
	}
}

func TestOraclesAgreeOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := generator.RandomGraph(20, 45, 3, seed)
		m := NewMatrix(g)
		b := NewBFS(g)
		h := NewTwoHop(g)
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				dm := m.Dist(u, v)
				if db := b.Dist(u, v); db != dm {
					t.Fatalf("seed %d: BFS Dist(%d,%d)=%d, matrix=%d", seed, u, v, db, dm)
				}
				if dh := h.Dist(u, v); dh != dm {
					t.Fatalf("seed %d: 2-hop Dist(%d,%d)=%d, matrix=%d", seed, u, v, dh, dm)
				}
			}
		}
	}
}

func TestBFSIteratorNonemptySemantics(t *testing.T) {
	// Triangle 0→1→2→0: the nonempty walk from 0 must reach 0 again at 3.
	g := graph.New()
	for i := 0; i < 3; i++ {
		g.AddNode(nil)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	b := NewBFS(g)
	got := map[graph.NodeID]int{}
	b.DescNonempty(0, 10, func(w graph.NodeID, d int) bool {
		got[w] = d
		return true
	})
	want := map[graph.NodeID]int{1: 1, 2: 2, 0: 3}
	for w, d := range want {
		if got[w] != d {
			t.Errorf("DescNonempty: dist[%d] = %d, want %d", w, got[w], d)
		}
	}
	got = map[graph.NodeID]int{}
	b.AncNonempty(0, 10, func(w graph.NodeID, d int) bool {
		got[w] = d
		return true
	})
	want = map[graph.NodeID]int{2: 1, 1: 2, 0: 3}
	for w, d := range want {
		if got[w] != d {
			t.Errorf("AncNonempty: dist[%d] = %d, want %d", w, got[w], d)
		}
	}
}

func TestBFSIteratorBound(t *testing.T) {
	g := chainGraph(6)
	b := NewBFS(g)
	count := 0
	b.DescNonempty(0, 3, func(w graph.NodeID, d int) bool {
		if d > 3 {
			t.Errorf("visited %d at distance %d > bound", w, d)
		}
		count++
		return true
	})
	if count != 3 {
		t.Fatalf("visited %d nodes, want 3", count)
	}
	// Early termination.
	count = 0
	b.DescNonempty(0, 5, func(w graph.NodeID, d int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d, want 1", count)
	}
}

func TestBFSIteratorMatchesMatrixOnRandom(t *testing.T) {
	for seed := int64(20); seed < 30; seed++ {
		g := generator.RandomGraph(15, 35, 2, seed)
		m := NewMatrix(g)
		b := NewBFS(g)
		for v := 0; v < g.NumNodes(); v++ {
			got := map[graph.NodeID]int{}
			b.DescNonempty(v, graph.Unreachable, func(w graph.NodeID, d int) bool {
				got[w] = d
				return true
			})
			for w := 0; w < g.NumNodes(); w++ {
				want := NonemptyDist(m, g, v, w)
				if want == graph.Unreachable {
					if _, ok := got[w]; ok {
						t.Fatalf("seed %d: DescNonempty visited unreachable %d→%d", seed, v, w)
					}
				} else if got[w] != want {
					t.Fatalf("seed %d: DescNonempty %d→%d = %d, want %d", seed, v, w, got[w], want)
				}
			}
		}
	}
}

func TestNonemptyDistSelfLoop(t *testing.T) {
	g := graph.New()
	g.AddNode(nil)
	g.AddEdge(0, 0)
	m := NewMatrix(g)
	if d := NonemptyDist(m, g, 0, 0); d != 1 {
		t.Fatalf("NonemptyDist self-loop = %d, want 1", d)
	}
}

func TestNonemptyDistNoCycle(t *testing.T) {
	g := chainGraph(3)
	m := NewMatrix(g)
	if d := NonemptyDist(m, g, 0, 0); d != graph.Unreachable {
		t.Fatalf("NonemptyDist on a chain = %d, want Unreachable", d)
	}
	if d := NonemptyDist(m, g, 0, 2); d != 2 {
		t.Fatalf("NonemptyDist(0,2) = %d, want 2", d)
	}
}

func TestWeightedMatrixUnitWeightsMatchBFS(t *testing.T) {
	g := generator.RandomGraph(12, 30, 2, 99)
	m := NewMatrix(g)
	w := NewWeightedMatrix(g, func(u, v graph.NodeID) float64 { return 1 })
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			if m.Dist(u, v) != w.Dist(u, v) {
				t.Fatalf("weighted(1) Dist(%d,%d) = %d, matrix = %d", u, v, w.Dist(u, v), m.Dist(u, v))
			}
		}
	}
}

func TestWeightedMatrixShorterDetour(t *testing.T) {
	// 0→1 weight 10; 0→2→1 weights 1+1: the detour wins.
	g := graph.New()
	for i := 0; i < 3; i++ {
		g.AddNode(nil)
	}
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 1)
	w := NewWeightedMatrix(g, func(u, v graph.NodeID) float64 {
		if u == 0 && v == 1 {
			return 10
		}
		return 1
	})
	if got := w.Weight(0, 1); got != 2 {
		t.Fatalf("Weight(0,1) = %v, want 2", got)
	}
}

func TestTwoHopLabelEntriesReported(t *testing.T) {
	g := generator.RandomGraph(30, 60, 2, 5)
	h := NewTwoHop(g)
	if h.LabelEntries() < 2*g.NumNodes() {
		t.Fatalf("LabelEntries = %d, want at least the self labels (%d)", h.LabelEntries(), 2*g.NumNodes())
	}
}

func TestMatrixBytes(t *testing.T) {
	g := chainGraph(10)
	m := NewMatrix(g)
	if m.Bytes() != 400 {
		t.Fatalf("Bytes = %d, want 400", m.Bytes())
	}
	if m.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d", m.NumNodes())
	}
}
