package distance

import "gpm/internal/graph"

// BFS is the zero-index oracle: every query runs a (bounded) breadth-first
// search over the live graph. It is the only oracle that needs no
// preprocessing and no maintenance under updates, which is why the paper
// uses "Match with BFS" for its large-graph scalability runs (Fig. 17(c,d)).
type BFS struct {
	g graph.View
	// scratch buffers reused across queries to avoid per-query allocation.
	dist  []int
	seen  []int32
	epoch int32
	queue []graph.NodeID
}

// NewBFS returns a BFS oracle over g. The oracle reads g live: updates to g
// are immediately visible (and invalidate nothing). Any graph.View works —
// in particular a shared canonical graph or an engine's update overlay.
func NewBFS(g graph.View) *BFS {
	return &BFS{g: g}
}

func (b *BFS) ensure() {
	n := b.g.NumNodes()
	if len(b.dist) < n {
		b.dist = make([]int, n)
		b.seen = make([]int32, n)
		b.epoch = 0
	}
	b.epoch++
	if b.epoch == 0x7fffffff {
		for i := range b.seen {
			b.seen[i] = 0
		}
		b.epoch = 1
	}
}

// Dist implements Oracle with a BFS that stops as soon as v is reached.
func (b *BFS) Dist(u, v graph.NodeID) int {
	if u == v {
		return 0
	}
	b.ensure()
	b.seen[u] = b.epoch
	b.dist[u] = 0
	b.queue = append(b.queue[:0], u)
	for qi := 0; qi < len(b.queue); qi++ {
		x := b.queue[qi]
		nd := b.dist[x] + 1
		for _, w := range b.g.Out(x) {
			if b.seen[w] == b.epoch {
				continue
			}
			if w == v {
				return nd
			}
			b.seen[w] = b.epoch
			b.dist[w] = nd
			b.queue = append(b.queue, w)
		}
	}
	return graph.Unreachable
}

// DescNonempty implements Iterator: a forward BFS seeded from the children
// of v at distance 1, so that v itself is reported when it lies on a cycle.
func (b *BFS) DescNonempty(v graph.NodeID, bound int, fn func(w graph.NodeID, d int) bool) {
	b.walk(v, graph.Forward, bound, fn)
}

// AncNonempty implements Iterator: the reverse-direction walk.
func (b *BFS) AncNonempty(v graph.NodeID, bound int, fn func(w graph.NodeID, d int) bool) {
	b.walk(v, graph.Reverse, bound, fn)
}

func (b *BFS) walk(v graph.NodeID, dir graph.Dir, bound int, fn func(w graph.NodeID, d int) bool) {
	if bound < 1 {
		return
	}
	b.ensure()
	adj := b.g.Out
	if dir == graph.Reverse {
		adj = b.g.In
	}
	b.queue = b.queue[:0]
	for _, c := range adj(v) {
		if b.seen[c] != b.epoch {
			b.seen[c] = b.epoch
			b.dist[c] = 1
			if !fn(c, 1) {
				return
			}
			b.queue = append(b.queue, c)
		}
	}
	for qi := 0; qi < len(b.queue); qi++ {
		x := b.queue[qi]
		nd := b.dist[x] + 1
		if nd > bound {
			continue
		}
		for _, w := range adj(x) {
			if b.seen[w] == b.epoch {
				continue
			}
			b.seen[w] = b.epoch
			b.dist[w] = nd
			if !fn(w, nd) {
				return
			}
			b.queue = append(b.queue, w)
		}
	}
}

var (
	_ Oracle   = (*BFS)(nil)
	_ Iterator = (*BFS)(nil)
)
