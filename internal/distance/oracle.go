// Package distance implements the distance substrates behind bounded
// simulation: the all-pairs distance matrix, on-demand bounded BFS, and
// 2-hop cover labeling — the three variants compared in Fig. 17(a,b) of the
// paper — behind one Oracle interface.
package distance

import "gpm/internal/graph"

// Oracle answers hop-distance queries over a fixed data graph. Dist returns
// the length of the shortest path from u to v, 0 when u == v, and
// graph.Unreachable when no path exists.
type Oracle interface {
	Dist(u, v graph.NodeID) int
}

// Iterator is the optional fast path implemented by oracles that can
// enumerate neighbourhoods directly, which lets the matcher avoid the
// O(|V|²) pair scan.
//
// Both methods use nonempty-path semantics: a node w is visited when it is
// connected to v by a path of length >= 1 and <= bound; in particular v
// itself is visited iff it lies on a cycle of length <= bound. fn receives
// the shortest such length; returning false stops the walk.
type Iterator interface {
	// DescNonempty visits descendants of v (nodes w with a nonempty path v→w).
	DescNonempty(v graph.NodeID, bound int, fn func(w graph.NodeID, d int) bool)
	// AncNonempty visits ancestors of v (nodes w with a nonempty path w→v).
	AncNonempty(v graph.NodeID, bound int, fn func(w graph.NodeID, d int) bool)
}

// NonemptyDist returns the length of the shortest nonempty path from u to v:
// Dist(u, v) when u != v, and the girth through u (shortest cycle containing
// u) when u == v. This is the "len(π) >= 1" semantics of pattern-edge bounds.
func NonemptyDist(o Oracle, g graph.View, u, v graph.NodeID) int {
	if u != v {
		return o.Dist(u, v)
	}
	best := graph.Unreachable
	for _, c := range g.Out(u) {
		if c == u {
			return 1 // self-loop
		}
		if d := o.Dist(c, u); d != graph.Unreachable && d+1 < best {
			best = d + 1
		}
	}
	return best
}
