package hornsat

import (
	"math/rand"
	"testing"

	"gpm/internal/generator"
	"gpm/internal/pattern"
	"gpm/internal/simulation"
)

func TestInitialEqualsSimulation(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := generator.RandomGraph(14, 28, 3, seed)
		p := generator.RandomPattern(4, 5, 3, 1, seed+100)
		e, err := New(p, g)
		if err != nil {
			t.Fatal(err)
		}
		want := simulation.Maximum(p, g)
		if got := e.Result(); !got.Equal(want) {
			t.Fatalf("seed %d: hornsat=%v simulation=%v", seed, got, want)
		}
	}
}

func TestUpdatesEqualSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := generator.RandomGraph(12, 20, 3, int64(trial))
		p := generator.RandomPattern(4, 5, 3, 1, int64(trial)+200)
		e, err := New(p, g)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 20; step++ {
			u, v := rng.Intn(12), rng.Intn(12)
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				e.Insert(u, v)
			} else {
				e.Delete(u, v)
			}
			want := simulation.Maximum(p, g)
			if got := e.Result(); !got.Equal(want) {
				t.Fatalf("trial %d step %d: hornsat=%v batch=%v", trial, step, got, want)
			}
		}
	}
}

func TestRejectsBoundedPattern(t *testing.T) {
	p := pattern.New()
	a := p.AddNode(pattern.Label("a"))
	b := p.AddNode(pattern.Label("b"))
	p.AddEdge(a, b, 2)
	g := generator.RandomGraph(5, 6, 2, 1)
	if _, err := New(p, g); err == nil {
		t.Fatal("want error for bounded pattern")
	}
}

func TestClausePairsMaterialized(t *testing.T) {
	g := generator.RandomGraph(20, 60, 2, 9)
	p := generator.RandomPattern(3, 4, 2, 1, 10)
	e, err := New(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if e.ClausePairs == 0 {
		t.Fatal("expected a materialized clause instance")
	}
}
