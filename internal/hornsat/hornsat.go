// Package hornsat implements the HORNSAT-based incremental simulation of
// Shukla et al. 1997 — the prior incremental algorithm the paper compares
// IncMatch against in Fig. 18. Simulation is encoded as a HORN-SAT
// refutation: a variable N(u, v) asserts "v cannot simulate u", with facts
// for predicate violations and clauses
//
//	N(u, v) ← ∧_{v' ∈ children(v)} N(u', v')   for every pattern edge (u, u')
//
// solved by unit propagation with support counters. Faithful to the
// paper's characterization of the baseline, the engine materializes the
// clause instance — O(|Ep||E|) support pairs — and reconstructs and
// re-propagates it for every unit update, which is what makes it lose to
// IncMatch as graphs grow (Section 8.2 Exp-1).
package hornsat

import (
	"fmt"

	"gpm/internal/graph"
	"gpm/internal/pattern"
	"gpm/internal/rel"
)

// Engine maintains the maximum simulation via HORN-SAT re-propagation.
type Engine struct {
	p     *pattern.Pattern
	g     *graph.Graph
	edges []pattern.Edge
	sat   rel.Relation
	match rel.Relation

	// ClausePairs counts the support pairs materialized by the last
	// propagation — the O(|Ep||E|) instance-size statistic.
	ClausePairs int64
}

// New builds the engine and solves the initial instance. The pattern must
// be normal.
func New(p *pattern.Pattern, g *graph.Graph) (*Engine, error) {
	if !p.IsNormal() {
		return nil, fmt.Errorf("hornsat: pattern is not normal")
	}
	e := &Engine{p: p, g: g, edges: p.Edges()}
	np := p.NumNodes()
	e.sat = rel.NewRelation(np)
	for u := 0; u < np; u++ {
		pred := p.Pred(u)
		for v := 0; v < g.NumNodes(); v++ {
			if pred.Eval(g.Attrs(v)) {
				e.sat[u].Add(v)
			}
		}
	}
	e.propagate()
	return e, nil
}

// propagate rebuilds the clause instance and unit-propagates the negation
// variables, leaving match = sat minus refuted pairs.
func (e *Engine) propagate() {
	np, n := e.p.NumNodes(), e.g.NumNodes()
	// not[u*n+v]: N(u, v) derived.
	not := make([]bool, np*n)
	type lit struct {
		u int
		v graph.NodeID
	}
	var queue []lit
	derive := func(u int, v graph.NodeID) {
		if !not[u*n+v] {
			not[u*n+v] = true
			queue = append(queue, lit{u, v})
		}
	}

	// Facts: predicate violations.
	for u := 0; u < np; u++ {
		for v := 0; v < n; v++ {
			if !e.sat[u].Has(v) {
				derive(u, v)
			}
		}
	}

	// Clause construction: per pattern edge (u, u') and data node v, a
	// support counter over v's children (the clause body); an empty body is
	// an immediate fact. This materializes the O(|Ep||E|) instance.
	// Counters include every child, refuted or not: the already-queued
	// facts perform their decrements during propagation (counting only
	// unrefuted children here would double-subtract them).
	sup := make([]map[graph.NodeID]int32, len(e.edges))
	e.ClausePairs = 0
	for ei, pe := range e.edges {
		sup[ei] = make(map[graph.NodeID]int32, n)
		for v := 0; v < n; v++ {
			c := int32(e.g.OutDegree(v))
			e.ClausePairs += int64(c)
			sup[ei][v] = c
			if c == 0 && !not[pe.From*n+v] {
				derive(pe.From, v)
			}
		}
	}

	// Unit propagation.
	inEdges := make([][]int, np)
	for ei, pe := range e.edges {
		inEdges[pe.To] = append(inEdges[pe.To], ei)
	}
	for len(queue) > 0 {
		l := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ei := range inEdges[l.u] {
			src := e.edges[ei].From
			for _, w := range e.g.In(l.v) {
				if not[src*n+w] {
					continue
				}
				sup[ei][w]--
				if sup[ei][w] == 0 {
					derive(src, w)
				}
			}
		}
	}

	e.match = rel.NewRelation(np)
	for u := 0; u < np; u++ {
		for v := range e.sat[u] {
			if !not[u*n+v] {
				e.match[u].Add(v)
			}
		}
	}
}

// Insert adds an edge and re-propagates.
func (e *Engine) Insert(v0, v1 graph.NodeID) bool {
	added, err := e.g.AddEdge(v0, v1)
	if err != nil || !added {
		return false
	}
	e.propagate()
	return true
}

// Delete removes an edge and re-propagates.
func (e *Engine) Delete(v0, v1 graph.NodeID) bool {
	if !e.g.RemoveEdge(v0, v1) {
		return false
	}
	e.propagate()
	return true
}

// Apply processes a batch one unit update at a time — the baseline has no
// batch mode.
func (e *Engine) Apply(ups []graph.Update) {
	for _, up := range ups {
		if up.Op == graph.InsertEdge {
			e.Insert(up.From, up.To)
		} else {
			e.Delete(up.From, up.To)
		}
	}
}

// Result returns Msim(P, G) under the totality convention.
func (e *Engine) Result() rel.Relation {
	for _, s := range e.match {
		if s.Len() == 0 {
			return rel.NewRelation(len(e.match))
		}
	}
	return e.match.Clone()
}
