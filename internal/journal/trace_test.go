package journal

import (
	"testing"

	"gpm/internal/graph"
)

const testTraceparent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"

// TestTraceSurvivesDurableReopen: the commit traceparent is part of the
// durable record — it must come back byte-for-byte after a reopen, both
// from Commits and from raw Replay, and commits written without a trace
// must stay trace-free (no framing bleed between records).
func TestTraceSurvivesDurableReopen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ups := []graph.Update{{Op: graph.InsertEdge, From: 1, To: 2}}
	if err := j.AppendCommitTrace(1, ups, testTraceparent); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCommit(2, ups); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCommitTrace(3, nil, testTraceparent); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	cs, err := j2.Commits(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("recovered %d commits, want 3", len(cs))
	}
	for i, want := range []string{testTraceparent, "", testTraceparent} {
		if cs[i].Trace != want {
			t.Fatalf("commit %d trace %q, want %q", cs[i].Seq, cs[i].Trace, want)
		}
	}
	if len(cs[0].Updates) != 1 || cs[0].Updates[0].From != 1 {
		t.Fatalf("commit payload lost alongside trace: %+v", cs[0])
	}
	var traces []string
	if err := j2.Replay(0, func(rec Record) error {
		traces = append(traces, rec.Trace)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 || traces[0] != testTraceparent || traces[1] != "" {
		t.Fatalf("replayed traces %v", traces)
	}
}

// TestTraceInRingOnly: a memory-only journal keeps the trace in its ring
// the same way, so followers tailing a non-durable leader still see it.
func TestTraceInRingOnly(t *testing.T) {
	j := New()
	if err := j.AppendCommitTrace(1, nil, testTraceparent); err != nil {
		t.Fatal(err)
	}
	cs, err := j.Commits(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || cs[0].Trace != testTraceparent {
		t.Fatalf("ring commit %+v", cs)
	}
}
