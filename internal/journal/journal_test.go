package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gpm/internal/graph"
)

// testUpdates fabricates a deterministic batch for seq s.
func testUpdates(s uint64, n int) []graph.Update {
	ups := make([]graph.Update, n)
	for i := range ups {
		op := graph.InsertEdge
		if (int(s)+i)%3 == 0 {
			op = graph.DeleteEdge
		}
		ups[i] = graph.Update{Op: op, From: int(s) + i, To: int(s) + i + 1}
	}
	return ups
}

func appendCommits(t *testing.T, j *Journal, from, to uint64) {
	t.Helper()
	for s := from; s <= to; s++ {
		if err := j.AppendCommit(s, testUpdates(s, int(s%4))); err != nil {
			t.Fatalf("append %d: %v", s, err)
		}
	}
}

func checkCommits(t *testing.T, j *Journal, fromSeq, wantFirst, wantLast uint64) {
	t.Helper()
	cs, err := j.Commits(fromSeq)
	if err != nil {
		t.Fatalf("Commits(%d): %v", fromSeq, err)
	}
	if uint64(len(cs)) != wantLast-wantFirst+1 {
		t.Fatalf("Commits(%d): %d commits, want %d", fromSeq, len(cs), wantLast-wantFirst+1)
	}
	for i, c := range cs {
		want := wantFirst + uint64(i)
		if c.Seq != want {
			t.Fatalf("Commits(%d)[%d].Seq = %d, want %d", fromSeq, i, c.Seq, want)
		}
		wantUps := testUpdates(want, int(want%4))
		if len(c.Updates) != len(wantUps) {
			t.Fatalf("seq %d: %d updates, want %d", want, len(c.Updates), len(wantUps))
		}
		for k := range wantUps {
			if c.Updates[k] != wantUps[k] {
				t.Fatalf("seq %d update %d: %v want %v", want, k, c.Updates[k], wantUps[k])
			}
		}
	}
}

// TestMemoryRingReplay covers the memory-only journal: replay within the
// ring, eviction beyond it, and head/oldest accounting.
func TestMemoryRingReplay(t *testing.T) {
	j := New(WithRing(10))
	appendCommits(t, j, 1, 25)
	checkCommits(t, j, 15, 16, 25)
	checkCommits(t, j, 20, 21, 25)
	if cs, err := j.Commits(25); err != nil || len(cs) != 0 {
		t.Fatalf("Commits(head) = %v, %v", cs, err)
	}
	if _, err := j.Commits(5); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Commits(5) err = %v, want ErrCompacted", err)
	}
	st := j.Stats()
	if st.Durable || st.HeadSeq != 25 || st.OldestSeq != 16 || st.Commits != 25 {
		t.Fatalf("stats %+v", st)
	}
}

// TestDurableRoundtrip writes commits and meta records, reopens, and
// checks the replayed state matches exactly.
func TestDurableRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendRegister(0, "watch", "sim", []byte("node 0 label=\"A\"\n")); err != nil {
		t.Fatal(err)
	}
	appendCommits(t, j, 1, 8)
	if err := j.AppendUnregister(8, "watch"); err != nil {
		t.Fatal(err)
	}
	appendCommits(t, j, 9, 12)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal("second Close must be a no-op:", err)
	}
	if err := j.AppendCommit(13, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	checkCommits(t, j2, 0, 1, 12)
	snap, tail := j2.RecoveredState()
	if snap != nil {
		t.Fatalf("unexpected snapshot %+v", snap)
	}
	if len(tail) != 14 {
		t.Fatalf("tail has %d records, want 14", len(tail))
	}
	if tail[0].Type != RecRegister || tail[0].ID != "watch" || tail[0].Kind != "sim" ||
		string(tail[0].Def) != "node 0 label=\"A\"\n" {
		t.Fatalf("register record %+v", tail[0])
	}
	if tail[9].Type != RecUnregister || tail[9].ID != "watch" || tail[9].Seq != 8 {
		t.Fatalf("unregister record %+v", tail[9])
	}
	for i, rec := range tail {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("tail[%d].LSN = %d", i, rec.LSN)
		}
	}
	// The second RecoveredState hand-off is empty.
	if snap, tail := j2.RecoveredState(); snap != nil || tail != nil {
		t.Fatal("RecoveredState must hand off only once")
	}
	// Appending after recovery continues the sequence.
	appendCommits(t, j2, 13, 14)
	checkCommits(t, j2, 10, 11, 14)
}

// TestSegmentRotationAndDiskFallback forces tiny segments and a tiny ring
// so deep replay must hit the sealed segment files.
func TestSegmentRotationAndDiskFallback(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, WithRing(4), WithSegmentBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	appendCommits(t, j, 1, 60)
	st := j.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments (%d bytes)", st.Segments, st.Bytes)
	}
	if st.OldestSeq != 1 || st.HeadSeq != 60 {
		t.Fatalf("stats %+v", st)
	}
	// The ring holds only 4 commits; this replay must come from disk.
	checkCommits(t, j, 0, 1, 60)
	checkCommits(t, j, 30, 31, 60)
}

// TestSnapshotCompactionAndRecovery checkpoints mid-stream and verifies
// covered segments are deleted, replay availability shrinks accordingly,
// and recovery = snapshot + tail.
func TestSnapshotCompactionAndRecovery(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, WithRing(4), WithSegmentBytes(128))
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	a := g.AddNode(graph.NewTuple("label", `"A"`))
	b := g.AddNode(graph.NewTuple("label", `"B"`))
	g.AddEdge(a, b)

	appendCommits(t, j, 1, 30)
	pats := []PatternDef{{ID: "q", Kind: "bsim", Def: []byte("node 0\n"), RegSeq: 7}}
	if err := j.WriteSnapshot(30, g, pats); err != nil {
		t.Fatal(err)
	}
	appendCommits(t, j, 31, 40)

	// Commits before the snapshot are compacted away (ring holds 37..40).
	if _, err := j.Commits(10); !errors.Is(err, ErrCompacted) {
		t.Fatalf("pre-snapshot replay: %v", err)
	}
	checkCommits(t, j, 30, 31, 40)
	st := j.Stats()
	if st.SnapshotSeq != 30 || st.OldestSeq != 31 {
		t.Fatalf("stats %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, WithRing(4))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	snap, tail := j2.RecoveredState()
	if snap == nil || snap.Seq != 30 {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.Graph.NumNodes() != 2 || !snap.Graph.HasEdge(a, b) {
		t.Fatalf("snapshot graph %v", snap.Graph)
	}
	if len(snap.Patterns) != 1 || snap.Patterns[0].ID != "q" || snap.Patterns[0].Kind != "bsim" ||
		snap.Patterns[0].RegSeq != 7 {
		t.Fatalf("snapshot patterns %+v", snap.Patterns)
	}
	nCommits := 0
	for _, rec := range tail {
		if rec.Type == RecCommit {
			nCommits++
			if rec.Seq <= 30 {
				t.Fatalf("tail contains pre-snapshot commit %d", rec.Seq)
			}
		}
	}
	if nCommits != 10 {
		t.Fatalf("tail has %d commits, want 10", nCommits)
	}
	if j2.HeadSeq() != 40 {
		t.Fatalf("head %d", j2.HeadSeq())
	}
	checkCommits(t, j2, 30, 31, 40)
}

// TestTornTailRecovery is the crash-recovery satellite: a journal whose
// final record is deliberately truncated must reopen to the last valid
// seq and accept appends from there.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendCommits(t, j, 1, 10)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop bytes off the end of the newest segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.gpwal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if j2.HeadSeq() != 9 {
		t.Fatalf("head after torn tail = %d, want 9", j2.HeadSeq())
	}
	checkCommits(t, j2, 0, 1, 9)
	// The journal accepts new commits from the recovered head.
	appendCommits(t, j2, 10, 12)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	j3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	checkCommits(t, j3, 0, 1, 12)
}

// TestCorruptMiddleRecord flips a byte inside an earlier record: recovery
// must stop at the corruption point, not resurrect records beyond it.
func TestCorruptMiddleRecord(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendCommits(t, j, 1, 6)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.gpwal"))
	data, err := os.ReadFile(segs[len(segs)-1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[len(segs)-1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if head := j2.HeadSeq(); head >= 6 {
		t.Fatalf("corrupt middle record survived: head %d", head)
	}
}

// TestCorruptCoveredSegmentKeepsTail: corruption in a segment fully
// covered by the latest snapshot must not destroy the later segments
// holding acknowledged post-snapshot commits.
func TestCorruptCoveredSegmentKeepsTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, WithRing(4), WithSegmentBytes(128))
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	g.AddNode(nil)
	appendCommits(t, j, 1, 30)
	if err := j.WriteSnapshot(30, g, nil); err != nil {
		t.Fatal(err)
	}
	appendCommits(t, j, 31, 40)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// A leftover corrupt segment from before the snapshot (e.g. a crash
	// raced compaction): lexically first, contents garbage.
	if err := os.WriteFile(filepath.Join(dir, segName(0)), []byte("not a frame at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, WithRing(4))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.HeadSeq() != 40 {
		t.Fatalf("head %d after covered corruption, want 40 (post-snapshot commits destroyed)", j2.HeadSeq())
	}
	checkCommits(t, j2, 30, 31, 40)
}

// TestPostSnapshotGapDropsLaterSegments: a gap in the LSN chain beyond
// the snapshot (a whole segment of acknowledged commits missing) must end
// the replayable tail there — later records must not replay over missing
// history — and the loss must be loud in Stats.
func TestPostSnapshotGapDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, WithSegmentBytes(128))
	if err != nil {
		t.Fatal(err)
	}
	appendCommits(t, j, 1, 40)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPattern))
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	if err := os.Remove(segs[1]); err != nil { // a middle segment vanishes
		t.Fatal(err)
	}

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.Stats()
	if st.HeadSeq >= 40 {
		t.Fatalf("head %d: records replayed over a mid-log gap", st.HeadSeq)
	}
	if st.LastError == "" {
		t.Fatal("a destroyed mid-log range must be surfaced in Stats.LastError")
	}
	checkCommits(t, j2, 0, 1, st.HeadSeq)
}

// TestReset wipes everything and re-seeds with a snapshot of the new
// graph at seq 0.
func TestReset(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendCommits(t, j, 1, 5)
	g := graph.New()
	g.AddNode(nil)
	g.AddNode(nil)
	g.AddEdge(0, 1)
	if err := j.Reset(g); err != nil {
		t.Fatal(err)
	}
	if j.HeadSeq() != 0 {
		t.Fatalf("head after reset = %d", j.HeadSeq())
	}
	appendCommits(t, j, 1, 3)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	snap, tail := j2.RecoveredState()
	if snap == nil || snap.Seq != 0 || snap.Graph.NumEdges() != 1 {
		t.Fatalf("post-reset snapshot %+v", snap)
	}
	nCommits := 0
	for _, rec := range tail {
		if rec.Type == RecCommit {
			nCommits++
		}
	}
	if nCommits != 3 || j2.HeadSeq() != 3 {
		t.Fatalf("post-reset tail: %d commits, head %d", nCommits, j2.HeadSeq())
	}
}

// TestReplayStreamsMetaRecords checks Replay's append-order contract over
// a mixed record stream.
func TestReplayStreamsMetaRecords(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.AppendRegister(0, "a", "sim", []byte("p"))
	appendCommits(t, j, 1, 2)
	j.AppendUnregister(2, "a")
	var kinds []RecordType
	if err := j.Replay(0, func(rec Record) error {
		kinds = append(kinds, rec.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []RecordType{RecRegister, RecCommit, RecCommit, RecUnregister}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("replay order %v, want %v", kinds, want)
	}
	// Replay after an LSN skips the prefix.
	var n int
	j.Replay(2, func(rec Record) error { n++; return nil })
	if n != 2 {
		t.Fatalf("Replay(2) visited %d records, want 2", n)
	}
}

// TestAppendRejectsSeqGap: once a commit append is skipped (e.g. a disk
// failure made the owner's seq move past the journal head), later appends
// must be rejected rather than recorded past a gap — Replay/Recover must
// never silently skip a commit.
func TestAppendRejectsSeqGap(t *testing.T) {
	j := New()
	appendCommits(t, j, 1, 3)
	if err := j.AppendCommit(5, nil); err == nil {
		t.Fatal("appending seq 5 after head 3 must fail")
	}
	if err := j.AppendCommit(4, nil); err != nil {
		t.Fatalf("contiguous append after a rejected gap: %v", err)
	}
	if st := j.Stats(); st.HeadSeq != 4 || st.LastError == "" {
		t.Fatalf("stats %+v", st)
	}
}

// TestOversizedRecordRejectedAtAppend: a record larger than the recovery
// scanner's corruption threshold must be rejected up front — acking it
// would destroy it (and everything after) on the next Open.
func TestOversizedRecordRejectedAtAppend(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendCommits(t, j, 1, 2)
	if err := j.AppendRegister(2, "big", "sim", make([]byte, maxRecordBytes+1)); err == nil {
		t.Fatal("oversized record must be rejected at append time")
	}
	// The failure is sticky (ordering after a skipped record is not
	// trustworthy) and loud.
	if err := j.AppendCommit(3, nil); err == nil {
		t.Fatal("appends must stop after a failed append")
	}
	if st := j.Stats(); st.LastError == "" || st.HeadSeq != 2 {
		t.Fatalf("stats %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The intact prefix recovers cleanly.
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	checkCommits(t, j2, 0, 1, 2)
}

// TestMemoryReplayHonorsLSN: the memory-only journal's Replay must honor
// the "LSN greater than afterLSN" contract and carry real LSNs, same as
// the durable path.
func TestMemoryReplayHonorsLSN(t *testing.T) {
	j := New()
	appendCommits(t, j, 1, 3)
	var got []uint64
	if err := j.Replay(2, func(rec Record) error {
		if rec.Type != RecCommit {
			t.Fatalf("record type %d", rec.Type)
		}
		got = append(got, rec.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("Replay(2) LSNs = %v, want [3]", got)
	}
}
