// Package journal implements the durable commit log of the continuous-query
// subsystem: an append-only record of everything that defines a registry's
// state over time — one commit record per committed sequence number carrying
// the net (post-coalescing) update batch ΔG, plus meta records for pattern
// registrations and unregistrations. Materializing the commit stream is the
// standard move of incremental view maintenance: with the history durable
// and replayable, a disconnected subscriber can resume from the sequence it
// last saw instead of re-snapshotting, a crashed server can recover its
// graph and standing patterns by replaying the tail over the latest
// snapshot, and a follower registry can be bootstrapped from snapshot +
// journal alone (the prerequisite for sharding the registry across
// processes).
//
// A Journal has two retention layers:
//
//   - An in-memory ring of the most recent commits (always on), serving hot
//     Replay/Commits calls without touching disk. A memory-only journal
//     (New) has just this layer; replay reaches back at most the ring size.
//   - Optional on-disk segment files (Open): every record is appended to
//     the active segment as a length-prefixed, CRC-checksummed frame;
//     segments rotate at a size threshold; periodic snapshots of the full
//     state (graph + registered patterns at a sequence number) bound
//     recovery time and let fully-covered segments be deleted (log
//     compaction).
//
// Durability model: appends are flushed to the OS per record (a process
// crash loses nothing), fsynced on Sync, Close, segment rotation and
// snapshot writes (a machine crash loses at most the records since the
// last fsync). Torn tail records — a crash mid-append — are detected by
// the CRC/length framing on Open and truncated away: recovery stops at the
// last valid record and appending continues from there.
//
// The journal is safe for concurrent use by one appender and any number of
// readers (all methods lock internally).
package journal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gpm/internal/graph"
	"gpm/internal/obs"
)

// Sentinel errors.
var (
	// ErrCompacted reports a replay request reaching further back than the
	// journal retains (evicted from the ring and compacted away on disk, or
	// predating the journal). The caller must fall back to a snapshot.
	ErrCompacted = errors.New("journal: requested commits compacted away")
	// ErrClosed reports an operation on a closed journal.
	ErrClosed = errors.New("journal: closed")
)

// RecordType discriminates journal records.
type RecordType uint8

const (
	// RecCommit is one committed batch: Seq and the net ΔG.
	RecCommit RecordType = 1
	// RecRegister is a pattern registration: ID, Kind and the pattern's
	// text-format definition, at registry sequence Seq.
	RecRegister RecordType = 2
	// RecUnregister is a pattern unregistration: ID at registry seq Seq.
	RecUnregister RecordType = 3
)

// Record is one journal entry. LSN is the journal-assigned log sequence
// number (monotonic over all records, including meta records); Seq is the
// registry commit sequence the record carries (the commit's own seq for
// RecCommit, the head seq at append time for meta records).
type Record struct {
	Type RecordType
	LSN  uint64
	Seq  uint64

	Updates []graph.Update // RecCommit: the net update batch
	Trace   string         // RecCommit: W3C traceparent of the commit span, "" when unsampled

	ID   string // RecRegister / RecUnregister
	Kind string // RecRegister
	Def  []byte // RecRegister: pattern text-format definition
}

// Commit is one committed batch as served by Commits/Replay: the sequence
// number and the net effective ΔG the engines were fanned. Updates is
// shared with the journal's ring — callers must not mutate it. Trace is
// the W3C traceparent of the commit span that produced the batch ("" when
// the commit was not sampled), so replicas and resumed tails can continue
// the same trace.
type Commit struct {
	Seq     uint64
	Updates []graph.Update
	Trace   string
}

// PatternDef is one standing pattern inside a snapshot: its id, engine
// kind, text-format definition, and the commit seq it was registered at
// (so a resume reaching back before the snapshot still knows the pattern
// existed then).
type PatternDef struct {
	ID     string
	Kind   string
	Def    []byte
	RegSeq uint64
}

// Snapshot is a full-state checkpoint: the graph and registered patterns
// as of commit sequence Seq, covering every record with LSN <= LSN.
type Snapshot struct {
	LSN      uint64
	Seq      uint64
	Graph    *graph.Graph
	Patterns []PatternDef
}

// Stats is a point-in-time journal snapshot for operators: retention
// ("from OldestSeq to HeadSeq"), disk footprint, and checkpoint progress.
type Stats struct {
	// Durable reports whether the journal persists to disk (Open) or is
	// memory-only (New).
	Durable bool `json:"durable"`
	// Commits counts commit records appended over the journal's lifetime,
	// including records recovered from disk on Open.
	Commits uint64 `json:"commits"`
	// Records is the head LSN: all records ever appended (commits + meta).
	Records uint64 `json:"records"`
	// Segments and Bytes describe the on-disk segment files (0 for
	// memory-only journals).
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// OldestSeq is the oldest commit sequence still replayable (ring or
	// disk); replay from any fromSeq >= OldestSeq-1 succeeds. 0 with
	// HeadSeq 0 means nothing has been committed yet.
	OldestSeq uint64 `json:"oldest_seq"`
	// HeadSeq is the newest committed sequence the journal has seen.
	HeadSeq uint64 `json:"head_seq"`
	// SnapshotSeq is the commit sequence of the latest durable snapshot (0
	// when none has been written).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// LastError surfaces the most recent append/snapshot failure (disk
	// full, permission), empty when healthy.
	LastError string `json:"last_error,omitempty"`
	// AppendMS, FsyncMS and SnapshotMS are disk-latency snapshots (record
	// appends, active-segment fsyncs, snapshot checkpoints), present only
	// once the corresponding path has run at least once. Milliseconds.
	AppendMS   *obs.HistSnapshot `json:"append_ms,omitempty"`
	FsyncMS    *obs.HistSnapshot `json:"fsync_ms,omitempty"`
	SnapshotMS *obs.HistSnapshot `json:"snapshot_ms,omitempty"`
}

// Option configures a Journal.
type Option func(*Journal)

// WithRing sets how many recent commits stay in the in-memory ring for
// hot replay (default 4096; n <= 0 restores the default).
func WithRing(n int) Option {
	return func(j *Journal) {
		if n > 0 {
			j.ringCap = n
		}
	}
}

// WithSegmentBytes sets the size threshold at which the active segment is
// sealed and a new one started (default 4 MiB).
func WithSegmentBytes(n int64) Option {
	return func(j *Journal) {
		if n > 0 {
			j.segBytes = n
		}
	}
}

// WithSnapshotEvery makes SnapshotDue report true every n commits, the
// registry's cue to write a checkpoint (default 1024; 0 disables automatic
// snapshots — WriteSnapshot still works when called explicitly).
func WithSnapshotEvery(n uint64) Option {
	return func(j *Journal) { j.snapEvery = n }
}

// Journal is the commit log. Construct with New (memory-only) or Open
// (durable).
type Journal struct {
	mu        sync.Mutex
	dir       string // "" = memory-only
	ringCap   int
	segBytes  int64
	snapEvery uint64

	ring []ringEntry // recent commits, oldest first

	lsn              uint64 // last assigned record LSN
	headSeq          uint64 // newest committed seq seen
	oldestSeq        uint64 // oldest replayable commit seq (valid iff haveOldest)
	haveOldest       bool
	commitCount      uint64
	commitsSinceSnap uint64

	segs        []*segmentInfo // sealed + active segments, in order; active last
	active      *segmentWriter
	nextOrdinal uint64

	snapLSN  uint64 // latest snapshot coverage
	snapSeq  uint64
	haveSnap bool

	// Recovered state held from Open until RecoveredState hands it off.
	recSnap *Snapshot
	recTail []Record

	met *jmetrics // disk-latency instruments, see metrics.go

	closed       bool
	lastErr      error
	appendFailed error // sticky: a lost record must never be followed by another
}

// ringEntry is one in-memory retained commit with the LSN it was
// appended at (needed so Replay's LSN contract holds for memory-only
// journals too).
type ringEntry struct {
	lsn uint64
	c   Commit
}

// New returns a memory-only journal: commits are retained in the ring
// only, so replay reaches back at most WithRing commits and nothing
// survives the process.
func New(options ...Option) *Journal {
	j := &Journal{ringCap: 4096, segBytes: 4 << 20, snapEvery: 1024}
	for _, o := range options {
		o(j)
	}
	if j.met == nil {
		j.met = newJMetrics(obs.Default())
	}
	return j
}

// AppendCommit appends one commit record: seq and the net update batch the
// registry fanned out. The journal retains ups (callers must not mutate
// the slice afterwards). The write is flushed to the OS before returning;
// call Sync for an fsync.
//
// Sequences must be contiguous: once an append fails (disk full), the
// owner's sequence moves on but the journal's head does not, and every
// later append is rejected here rather than recorded past a gap — a
// gapped log would let Replay/Recover silently skip a commit. The journal
// serves its intact prefix until the process restarts from it.
func (j *Journal) AppendCommit(seq uint64, ups []graph.Update) error {
	return j.AppendCommitTrace(seq, ups, "")
}

// AppendCommitTrace is AppendCommit carrying the commit span's W3C
// traceparent, persisted on the record so replay and follower bootstrap
// can continue the same trace ("" records no trace).
func (j *Journal) AppendCommitTrace(seq uint64, ups []graph.Update, trace string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.appendFailed != nil {
		return fmt.Errorf("journal: appends stopped after a failed write: %w", j.appendFailed)
	}
	if j.headSeq != 0 && seq != j.headSeq+1 {
		err := fmt.Errorf("journal: commit seq %d does not follow head %d (an earlier append failed?); journaling stopped", seq, j.headSeq)
		j.lastErr = err
		return err
	}
	j.lsn++
	rec := Record{Type: RecCommit, LSN: j.lsn, Seq: seq, Updates: ups, Trace: trace}
	if err := j.writeDurable(&rec); err != nil {
		j.lsn-- // the failed frame was rolled back (or the segment poisoned)
		j.lastErr = err
		j.appendFailed = err
		return err
	}
	j.headSeq = seq
	if !j.haveOldest {
		j.oldestSeq, j.haveOldest = seq, true
	}
	j.ring = append(j.ring, ringEntry{lsn: j.lsn, c: Commit{Seq: seq, Updates: ups, Trace: trace}})
	j.trimRing()
	j.commitCount++
	j.commitsSinceSnap++
	return nil
}

// AppendRegister appends a pattern-registration meta record: the pattern's
// id, resolved engine kind and text-format definition, effective after
// commit seq.
func (j *Journal) AppendRegister(seq uint64, id, kind string, def []byte) error {
	return j.appendMeta(Record{Type: RecRegister, Seq: seq, ID: id, Kind: kind, Def: def})
}

// AppendUnregister appends a pattern-unregistration meta record.
func (j *Journal) AppendUnregister(seq uint64, id string) error {
	return j.appendMeta(Record{Type: RecUnregister, Seq: seq, ID: id})
}

func (j *Journal) appendMeta(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.appendFailed != nil {
		return fmt.Errorf("journal: appends stopped after a failed write: %w", j.appendFailed)
	}
	j.lsn++
	rec.LSN = j.lsn
	if err := j.writeDurable(&rec); err != nil {
		j.lsn--
		j.lastErr = err
		j.appendFailed = err
		return err
	}
	return nil
}

// Broken reports why the journal can no longer accept appends: the sticky
// append-failure (a lost record must never be followed by another), or
// ErrClosed after Close. It returns nil while the journal is healthy —
// the readiness condition gpserve's /v1/readyz probes.
func (j *Journal) Broken() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.appendFailed != nil {
		return fmt.Errorf("journal: appends stopped after a failed write: %w", j.appendFailed)
	}
	return nil
}

// trimRing evicts the oldest ring entries beyond capacity and rederives
// the oldest replayable seq: a memory-only journal loses replayability
// past the ring, a durable one falls back to whatever the (possibly
// compacted) segments still hold.
func (j *Journal) trimRing() {
	if over := len(j.ring) - j.ringCap; over > 0 {
		// Copy down instead of re-slicing so evicted batches are freed.
		j.ring = append(j.ring[:0], j.ring[over:]...)
		j.recomputeOldest()
	}
}

// Commits returns the committed batches with sequence numbers in
// (fromSeq, head], oldest first — "everything after fromSeq". It serves
// from the ring when possible and falls back to scanning disk segments.
// ErrCompacted reports that the range reaches further back than the
// journal retains. The returned Updates slices are shared — do not mutate.
func (j *Journal) Commits(fromSeq uint64) ([]Commit, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if fromSeq >= j.headSeq {
		return nil, nil
	}
	if !j.haveOldest || fromSeq < j.oldestSeq-1 {
		return nil, fmt.Errorf("%w: want seq > %d, oldest retained is %d", ErrCompacted, fromSeq, j.oldestSeq)
	}
	// Hot path: the ring covers the whole range.
	if len(j.ring) > 0 && j.ring[0].c.Seq <= fromSeq+1 {
		out := make([]Commit, 0, j.headSeq-fromSeq)
		for _, e := range j.ring {
			if e.c.Seq > fromSeq {
				out = append(out, e.c)
			}
		}
		return out, nil
	}
	if j.dir == "" {
		return nil, fmt.Errorf("%w: want seq > %d, ring starts at %d", ErrCompacted, fromSeq, j.oldestSeq)
	}
	return j.commitsFromDisk(fromSeq)
}

// Replay streams every retained record with LSN greater than afterLSN in
// append order — commit and meta records alike — to fn, stopping early on
// fn error. It reads from disk for durable journals; memory-only journals
// replay the commit ring (meta records are not retained in memory).
func (j *Journal) Replay(afterLSN uint64, fn func(Record) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dir == "" {
		for _, e := range j.ring {
			if e.lsn <= afterLSN {
				continue
			}
			if err := fn(Record{Type: RecCommit, LSN: e.lsn, Seq: e.c.Seq, Updates: e.c.Updates, Trace: e.c.Trace}); err != nil {
				return err
			}
		}
		return nil
	}
	return j.replayDisk(afterLSN, fn)
}

// RecoveredState hands off what Open found on disk: the latest valid
// snapshot (nil when none) and the tail of records appended after it, in
// append order. The caller takes ownership of the snapshot's Graph — the
// journal drops its reference, so this returns non-nil at most once.
func (j *Journal) RecoveredState() (*Snapshot, []Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap, tail := j.recSnap, j.recTail
	j.recSnap, j.recTail = nil, nil
	return snap, tail
}

// SnapshotDue reports whether enough commits accumulated since the last
// snapshot that the owner should checkpoint (WriteSnapshot). Always false
// for memory-only journals and when WithSnapshotEvery(0) disabled it.
func (j *Journal) SnapshotDue() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dir != "" && j.snapEvery > 0 && j.commitsSinceSnap >= j.snapEvery
}

// HeadSeq returns the newest committed sequence the journal has recorded.
func (j *Journal) HeadSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.headSeq
}

// Stats returns the journal's operator counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Stats{
		Durable: j.dir != "",
		Commits: j.commitCount,
		Records: j.lsn,
		HeadSeq: j.headSeq,
	}
	if j.haveOldest {
		st.OldestSeq = j.oldestSeq
	}
	if j.haveSnap {
		st.SnapshotSeq = j.snapSeq
	}
	for _, s := range j.segs {
		st.Segments++
		st.Bytes += s.size
	}
	if j.lastErr != nil {
		st.LastError = j.lastErr.Error()
	}
	for _, t := range []struct {
		h   *obs.Histogram
		dst **obs.HistSnapshot
	}{
		{j.met.appendMS, &st.AppendMS},
		{j.met.fsyncMS, &st.FsyncMS},
		{j.met.snapMS, &st.SnapshotMS},
	} {
		if s := t.h.Snapshot(); s.Count > 0 {
			snap := s
			*t.dst = &snap
		}
	}
	return st
}

// Sync flushes buffered appends and fsyncs the active segment. A no-op
// for memory-only journals.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.active == nil {
		return nil
	}
	defer j.met.fsyncMS.ObserveSince(time.Now())
	if err := j.active.sync(); err != nil {
		j.lastErr = err
		return err
	}
	return nil
}

// Close flushes, fsyncs and closes the journal; further appends fail.
// Safe to call more than once.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.active == nil {
		return nil
	}
	err := j.active.close()
	j.active = nil
	if err != nil {
		j.lastErr = err
	}
	return err
}

// Bootstrap seeds a brand-new durable journal with a snapshot of the
// initial graph at sequence 0, so recovery can replay commits over it. A
// no-op for memory-only journals and for journals that already hold any
// state (a snapshot or records) — it never destroys history, unlike
// Reset. The registry calls this when a journal is attached at
// construction.
func (j *Journal) Bootstrap(g *graph.Graph) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.dir == "" || j.haveSnap || j.lsn > 0 || j.headSeq > 0 {
		return nil
	}
	if err := j.writeSnapshotLocked(0, g, nil); err != nil {
		j.lastErr = err
		return err
	}
	return nil
}

// Reset wipes the journal — ring, segments and snapshots — and restarts it
// at sequence 0 over g: the "new world" of a graph load. For durable
// journals the new graph is immediately checkpointed so a crash right
// after Reset still recovers it. The journal retains no reference to g.
func (j *Journal) Reset(g *graph.Graph) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	j.ring = j.ring[:0]
	j.lsn, j.headSeq, j.oldestSeq, j.haveOldest = 0, 0, 0, false
	j.commitCount, j.commitsSinceSnap = 0, 0
	j.recSnap, j.recTail = nil, nil
	j.appendFailed = nil // a reset is a new world; appends may resume
	if j.dir == "" {
		return nil
	}
	if err := j.resetDiskLocked(g); err != nil {
		j.lastErr = err
		return err
	}
	return nil
}
