package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"gpm/internal/graph"
)

// On-disk record framing, shared by segment files and snapshot files:
//
//	u32 little-endian payload length
//	u32 little-endian CRC-32C (Castagnoli) of the payload
//	payload bytes
//
// A frame whose length runs past the file, whose CRC mismatches, or whose
// payload fails to decode marks the end of the valid prefix — the torn
// tail a crash mid-append leaves behind. Recovery truncates there.
//
// Record payloads:
//
//	u8 type | uvarint lsn | uvarint seq | body
//	body(commit):     uvarint n | n × (u8 op | uvarint from | uvarint to) | [bytes(trace)]
//	body(register):   bytes(id) | bytes(kind) | bytes(def)
//	body(unregister): bytes(id)
//
// where bytes(x) = uvarint len | raw bytes. The commit body's trailing
// trace field (the commit span's W3C traceparent) is written only when
// non-empty and decoded only when payload bytes remain, so records from
// before tracing — and untraced commits — round-trip unchanged.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeader    = 8
	maxRecordBytes = 64 << 20 // larger lengths are treated as corruption
	segPattern     = "wal-*.gpwal"
)

func segName(ordinal uint64) string { return fmt.Sprintf("wal-%016d.gpwal", ordinal) }

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func encodeRecord(rec *Record) []byte {
	buf := make([]byte, 0, 64+8*len(rec.Updates))
	buf = append(buf, byte(rec.Type))
	buf = binary.AppendUvarint(buf, rec.LSN)
	buf = binary.AppendUvarint(buf, rec.Seq)
	switch rec.Type {
	case RecCommit:
		buf = binary.AppendUvarint(buf, uint64(len(rec.Updates)))
		for _, up := range rec.Updates {
			buf = append(buf, byte(up.Op))
			buf = binary.AppendUvarint(buf, uint64(up.From))
			buf = binary.AppendUvarint(buf, uint64(up.To))
		}
		if rec.Trace != "" {
			buf = appendBytes(buf, []byte(rec.Trace))
		}
	case RecRegister:
		buf = appendBytes(buf, []byte(rec.ID))
		buf = appendBytes(buf, []byte(rec.Kind))
		buf = appendBytes(buf, rec.Def)
	case RecUnregister:
		buf = appendBytes(buf, []byte(rec.ID))
	}
	return buf
}

// decoder walks a payload; any overrun poisons it and the caller checks err
// once at the end.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.b)-d.off) < n {
		d.fail()
		return nil
	}
	v := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return v
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("journal: truncated payload")
	}
}

func decodeRecord(payload []byte) (Record, error) {
	d := decoder{b: payload}
	rec := Record{Type: RecordType(d.u8())}
	rec.LSN = d.uvarint()
	rec.Seq = d.uvarint()
	switch rec.Type {
	case RecCommit:
		n := d.uvarint()
		if d.err == nil && n > uint64(len(payload)) { // each update is >= 3 bytes
			return rec, fmt.Errorf("journal: implausible update count %d", n)
		}
		if n > 0 && d.err == nil {
			rec.Updates = make([]graph.Update, 0, n)
			for i := uint64(0); i < n; i++ {
				op := graph.Op(d.u8())
				from := d.uvarint()
				to := d.uvarint()
				rec.Updates = append(rec.Updates, graph.Update{Op: op, From: int(from), To: int(to)})
			}
		}
		if d.err == nil && d.off < len(d.b) {
			rec.Trace = string(d.bytes())
		}
	case RecRegister:
		rec.ID = string(d.bytes())
		rec.Kind = string(d.bytes())
		rec.Def = append([]byte(nil), d.bytes()...)
	case RecUnregister:
		rec.ID = string(d.bytes())
	default:
		return rec, fmt.Errorf("journal: unknown record type %d", rec.Type)
	}
	if d.err != nil {
		return rec, d.err
	}
	return rec, nil
}

// frame wraps a payload in the length+CRC header.
func frame(payload []byte) []byte {
	out := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// scanFrames walks the framed records in data, calling fn for each valid
// payload, and returns the byte offset of the end of the valid prefix —
// anything after it is a torn tail.
func scanFrames(data []byte, fn func(payload []byte) bool) int64 {
	off := 0
	for {
		if len(data)-off < frameHeader {
			return int64(off)
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes || len(data)-off-frameHeader < n {
			return int64(off)
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return int64(off)
		}
		if !fn(payload) {
			return int64(off) // the rejected frame is not part of the valid prefix
		}
		off += frameHeader + n
	}
}

// segmentInfo describes one segment file.
type segmentInfo struct {
	path       string
	ordinal    uint64
	size       int64
	maxLSN     uint64 // largest record LSN in the segment (0 = empty)
	firstSeq   uint64 // first and last commit seq, valid iff hasCommits
	lastSeq    uint64
	hasCommits bool
}

// segmentWriter is the active segment's append handle. Appends are written
// straight through (one write syscall per record) so a process crash
// never loses an acknowledged append; fsync happens on sync/close.
type segmentWriter struct {
	f      *os.File
	info   *segmentInfo
	failed bool // a failed write could not be rolled back; no more appends
}

func (w *segmentWriter) append(rec *Record) error {
	if w.failed {
		return fmt.Errorf("journal: segment %s unusable after a failed write", w.info.path)
	}
	framed := frame(encodeRecord(rec))
	if len(framed)-frameHeader > maxRecordBytes {
		// Enforced at write time because recovery treats an over-limit
		// length as corruption: acknowledging such a record would destroy
		// it (and everything after it) on the next Open.
		return fmt.Errorf("journal: record of %d bytes exceeds the %d-byte limit", len(framed)-frameHeader, maxRecordBytes)
	}
	if _, err := w.f.Write(framed); err != nil {
		// A short write may have left a partial frame after the last
		// record boundary; roll the file back so a later successful
		// append can never land beyond garbage (recovery would truncate
		// at the garbage and silently drop those acknowledged records).
		if terr := w.f.Truncate(w.info.size); terr != nil {
			w.failed = true
		} else if _, serr := w.f.Seek(w.info.size, io.SeekStart); serr != nil {
			w.failed = true
		}
		return err
	}
	w.info.size += int64(len(framed))
	w.info.maxLSN = rec.LSN
	if rec.Type == RecCommit {
		if !w.info.hasCommits {
			w.info.firstSeq, w.info.hasCommits = rec.Seq, true
		}
		w.info.lastSeq = rec.Seq
	}
	return nil
}

func (w *segmentWriter) sync() error { return w.f.Sync() }

func (w *segmentWriter) close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Open opens (or creates) a durable journal in dir and recovers its state:
// the latest valid snapshot, the record tail after it, the commit ring,
// and head LSN/seq. A torn tail record is truncated away; recovery stops
// at the last valid record. Appending continues in a fresh segment.
func Open(dir string, options ...Option) (*Journal, error) {
	j := New(options...)
	j.dir = dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := j.recoverSnapshot(); err != nil {
		return nil, err
	}
	if err := j.recoverSegments(); err != nil {
		return nil, err
	}
	if j.haveSnap {
		if j.snapLSN > j.lsn {
			j.lsn = j.snapLSN
		}
		if j.snapSeq > j.headSeq {
			j.headSeq = j.snapSeq
		}
	}
	if err := j.rotate(); err != nil {
		return nil, err
	}
	return j, nil
}

// recoverSegments reads every segment in order, truncating torn tails and
// rebuilding the ring, the recovered tail, and the seq/lsn heads.
//
// Record LSNs are dense, so a torn or corrupt segment shows up as a gap
// in the LSN chain at the next accepted record. A gap entirely covered by
// the latest snapshot (every missing LSN <= snapLSN) is harmless — the
// snapshot replaces those records — and recovery continues into the later
// segments, which may hold acknowledged post-snapshot commits that must
// not be destroyed. A gap that reaches past the snapshot means the
// replayable tail ends there: later records must not replay over missing
// history, so the remaining segments are dropped and the loss is surfaced
// in Stats.LastError.
func (j *Journal) recoverSegments() error {
	paths, err := filepath.Glob(filepath.Join(j.dir, segPattern))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	var lastLSN uint64
	dropRest := false
	for _, path := range paths {
		var ord uint64
		if _, err := fmt.Sscanf(filepath.Base(path), "wal-%d.gpwal", &ord); err != nil {
			continue // foreign file
		}
		if dropRest {
			os.Remove(path)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		info := &segmentInfo{path: path, ordinal: ord}
		var decodeErr, gapErr error
		end := scanFrames(data, func(payload []byte) bool {
			rec, err := decodeRecord(payload)
			if err != nil {
				decodeErr = err
				return false
			}
			if rec.LSN > j.snapLSN {
				// Past the snapshot, the chain must be contiguous from
				// max(lastLSN, snapLSN); anything missing in between is
				// unrecoverable history.
				prev := lastLSN
				if j.snapLSN > prev {
					prev = j.snapLSN
				}
				if rec.LSN != prev+1 {
					gapErr = fmt.Errorf("journal: records %d..%d lost beyond snapshot (LSN %d); later records dropped",
						prev+1, rec.LSN-1, j.snapLSN)
					return false
				}
			}
			lastLSN = rec.LSN
			j.ingestRecovered(rec, info)
			return true
		})
		if gapErr != nil {
			// The chain check fires on a segment's first record (within a
			// file, accepted records are contiguous), so nothing from this
			// file was ingested: drop it and everything after.
			j.lastErr = gapErr
			os.Remove(path)
			dropRest = true
			continue
		}
		if decodeErr != nil || end < int64(len(data)) {
			// Torn or corrupt tail: keep the valid prefix; whether later
			// segments survive is decided by the LSN chain above.
			if err := os.Truncate(path, end); err != nil {
				return err
			}
		}
		info.size = end
		if info.maxLSN == 0 && info.size == 0 {
			os.Remove(path)
			continue
		}
		j.segs = append(j.segs, info)
		if info.ordinal >= j.nextOrdinal {
			j.nextOrdinal = info.ordinal + 1
		}
	}
	return nil
}

// ingestRecovered folds one recovered record into the journal's in-memory
// state: lsn/seq heads, the ring, segment metadata, and the post-snapshot
// tail used by RecoveredState.
func (j *Journal) ingestRecovered(rec Record, info *segmentInfo) {
	if rec.LSN > j.lsn {
		j.lsn = rec.LSN
	}
	info.maxLSN = rec.LSN
	if rec.Type == RecCommit {
		if rec.Seq > j.headSeq {
			j.headSeq = rec.Seq
		}
		if !info.hasCommits {
			info.firstSeq, info.hasCommits = rec.Seq, true
		}
		info.lastSeq = rec.Seq
		if !j.haveOldest {
			j.oldestSeq, j.haveOldest = rec.Seq, true
		}
		j.commitCount++
		j.ring = append(j.ring, ringEntry{lsn: rec.LSN, c: Commit{Seq: rec.Seq, Updates: rec.Updates, Trace: rec.Trace}})
		j.trimRingRecovery()
	}
	if !j.haveSnap || rec.LSN > j.snapLSN {
		j.recTail = append(j.recTail, rec)
	}
}

// trimRingRecovery is trimRing for the durable recovery path: eviction
// never moves oldestSeq because the evicted commits remain on disk.
func (j *Journal) trimRingRecovery() {
	if over := len(j.ring) - j.ringCap; over > 0 {
		j.ring = append(j.ring[:0], j.ring[over:]...)
	}
}

// writeDurable appends rec to the active segment (durable journals only),
// rotating first when the active segment is full.
func (j *Journal) writeDurable(rec *Record) error {
	if j.dir == "" {
		return nil
	}
	if j.active == nil {
		return ErrClosed
	}
	defer j.met.appendMS.ObserveSince(time.Now())
	if j.active.info.size >= j.segBytes {
		if err := j.rotate(); err != nil {
			return err
		}
	}
	return j.active.append(rec)
}

// rotate seals the active segment (fsync) and starts a new one.
func (j *Journal) rotate() error {
	if j.active != nil {
		if err := j.active.close(); err != nil {
			return err
		}
		j.active = nil
	}
	info := &segmentInfo{path: filepath.Join(j.dir, segName(j.nextOrdinal)), ordinal: j.nextOrdinal}
	j.nextOrdinal++
	f, err := os.OpenFile(info.path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	j.segs = append(j.segs, info)
	j.active = &segmentWriter{f: f, info: info}
	return nil
}

// commitsFromDisk scans the segment files for commits in (fromSeq, head].
// Commit sequences increase with LSN, so segments whose last commit is at
// or below fromSeq are skipped without touching the disk — the scan cost
// is proportional to the requested range, not the whole log. Called with
// j.mu held; the active segment needs no flush because appends are
// unbuffered.
func (j *Journal) commitsFromDisk(fromSeq uint64) ([]Commit, error) {
	out := make([]Commit, 0, j.headSeq-fromSeq)
	for _, seg := range j.segs {
		if !seg.hasCommits || seg.lastSeq <= fromSeq {
			continue
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, err
		}
		var decErr error
		scanFrames(data, func(payload []byte) bool {
			rec, err := decodeRecord(payload)
			if err != nil {
				decErr = err
				return false
			}
			if rec.Type == RecCommit && rec.Seq > fromSeq {
				out = append(out, Commit{Seq: rec.Seq, Updates: rec.Updates, Trace: rec.Trace})
			}
			return true
		})
		if decErr != nil {
			return nil, decErr
		}
	}
	if len(out) == 0 || out[0].Seq != fromSeq+1 {
		return nil, fmt.Errorf("%w: want seq > %d, disk starts later", ErrCompacted, fromSeq)
	}
	return out, nil
}

// replayDisk streams records with LSN > afterLSN from the segment files in
// order. Called with j.mu held.
func (j *Journal) replayDisk(afterLSN uint64, fn func(Record) error) error {
	for _, seg := range j.segs {
		if seg.maxLSN <= afterLSN {
			continue
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		var cbErr error
		scanFrames(data, func(payload []byte) bool {
			rec, err := decodeRecord(payload)
			if err != nil {
				cbErr = err
				return false
			}
			if rec.LSN <= afterLSN {
				return true
			}
			cbErr = fn(rec)
			return cbErr == nil
		})
		if cbErr != nil {
			return cbErr
		}
	}
	return nil
}

// resetDiskLocked wipes all segments and snapshots and re-seeds the
// directory with a snapshot of g at seq 0 plus a fresh active segment.
// Called with j.mu held.
func (j *Journal) resetDiskLocked(g *graph.Graph) error {
	if j.active != nil {
		j.active.close() //nolint:errcheck // the file is deleted next
		j.active = nil
	}
	for _, glob := range []string{segPattern, snapGlob} {
		paths, err := filepath.Glob(filepath.Join(j.dir, glob))
		if err != nil {
			return err
		}
		for _, p := range paths {
			if err := os.Remove(p); err != nil {
				return err
			}
		}
	}
	j.segs = nil
	j.nextOrdinal = 1
	j.snapLSN, j.snapSeq, j.haveSnap = 0, 0, false
	if err := j.writeSnapshotLocked(0, g, nil); err != nil {
		return err
	}
	return j.rotate()
}
