package journal

import (
	"gpm/internal/obs"
)

// The journal's telemetry: disk latency for the three write paths operators
// care about — record appends (the commit critical path), fsyncs (Sync and
// segment seals), and snapshot checkpoints. Instruments live in an
// obs.Registry (obs.Default() unless WithMetrics injects one), surface on
// GET /v1/metricz, and snapshot into Stats for GET /v1/stats.

type jmetrics struct {
	appendMS *obs.Histogram // writeDurable: frame append incl. rotation
	fsyncMS  *obs.Histogram // explicit Sync fsyncs of the active segment
	snapMS   *obs.Histogram // WriteSnapshot: serialize + fsync + compact
}

func newJMetrics(reg *obs.Registry) *jmetrics {
	return &jmetrics{
		appendMS: reg.Histogram("gpm_journal_append_ms",
			"Durable record append wall time in milliseconds, including segment rotation when one seals.", nil),
		fsyncMS: reg.Histogram("gpm_journal_fsync_ms",
			"Active-segment fsync wall time in milliseconds.", nil),
		snapMS: reg.Histogram("gpm_journal_snapshot_ms",
			"Snapshot checkpoint wall time in milliseconds (serialize, fsync, compact).", nil),
	}
}

// WithMetrics directs the journal's disk-latency instruments into reg
// instead of the process-wide obs.Default() — for tests that need isolated
// metrics.
func WithMetrics(reg *obs.Registry) Option {
	return func(j *Journal) { j.met = newJMetrics(reg) }
}
