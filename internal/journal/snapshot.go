package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"gpm/internal/graph"
)

// Snapshot files checkpoint the full registry state — graph plus standing
// patterns — at one (LSN, seq) point, bounding recovery to "load latest
// snapshot, replay the record tail" and letting every segment fully
// covered by the snapshot be deleted (compaction).
//
// File format: one frame (same u32 len | u32 crc header as segment
// records) whose payload is
//
//	"GPMSNAP1" | uvarint lsn | uvarint seq | bytes(graph text)
//	| uvarint npatterns | npatterns × (bytes(id) | bytes(kind) | bytes(def))
//
// Snapshots are written to a temp file, fsynced, then renamed into place,
// so a crash mid-write never destroys the previous snapshot. The graph is
// serialized in the repository's text format — the same bytes POST /graph
// accepts — so a snapshot is also a portable export.

const (
	snapMagic = "GPMSNAP1"
	snapGlob  = "snap-*.gpsnap"
)

func snapName(lsn uint64) string { return fmt.Sprintf("snap-%016d.gpsnap", lsn) }

// WriteSnapshot checkpoints the state (graph g and registered patterns
// pats) as of commit sequence seq, covering every record appended so far.
// On success, segments fully covered by the checkpoint and older snapshot
// files are deleted. The journal does not retain g. A no-op for
// memory-only journals.
func (j *Journal) WriteSnapshot(seq uint64, g *graph.Graph, pats []PatternDef) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	j.commitsSinceSnap = 0
	if j.dir == "" {
		return nil
	}
	defer j.met.snapMS.ObserveSince(time.Now())
	if err := j.writeSnapshotLocked(seq, g, pats); err != nil {
		j.lastErr = err
		return err
	}
	if err := j.compact(); err != nil {
		j.lastErr = err
		return err
	}
	return nil
}

// writeSnapshotLocked writes the snapshot file for the current LSN. Called
// with j.mu held (or from Open/Reset before the journal is shared).
func (j *Journal) writeSnapshotLocked(seq uint64, g *graph.Graph, pats []PatternDef) error {
	var gtext bytes.Buffer
	if err := g.Write(&gtext); err != nil {
		return err
	}
	payload := make([]byte, 0, len(snapMagic)+gtext.Len()+64)
	payload = append(payload, snapMagic...)
	payload = binary.AppendUvarint(payload, j.lsn)
	payload = binary.AppendUvarint(payload, seq)
	payload = appendBytes(payload, gtext.Bytes())
	payload = binary.AppendUvarint(payload, uint64(len(pats)))
	for _, p := range pats {
		payload = appendBytes(payload, []byte(p.ID))
		payload = appendBytes(payload, []byte(p.Kind))
		payload = appendBytes(payload, p.Def)
		payload = binary.AppendUvarint(payload, p.RegSeq)
	}

	path := filepath.Join(j.dir, snapName(j.lsn))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frame(payload)); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(j.dir)
	j.snapLSN, j.snapSeq, j.haveSnap = j.lsn, seq, true
	return nil
}

// decodeSnapshot parses a snapshot file's payload.
func decodeSnapshot(payload []byte) (*Snapshot, error) {
	if len(payload) < len(snapMagic) || string(payload[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("journal: not a snapshot payload")
	}
	d := decoder{b: payload, off: len(snapMagic)}
	snap := &Snapshot{LSN: d.uvarint(), Seq: d.uvarint()}
	gtext := d.bytes()
	if d.err != nil {
		return nil, d.err
	}
	g, err := graph.Read(bytes.NewReader(gtext))
	if err != nil {
		return nil, fmt.Errorf("journal: snapshot graph: %w", err)
	}
	snap.Graph = g
	n := d.uvarint()
	if d.err == nil && n > uint64(len(payload)) {
		return nil, fmt.Errorf("journal: implausible pattern count %d", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		snap.Patterns = append(snap.Patterns, PatternDef{
			ID:     string(d.bytes()),
			Kind:   string(d.bytes()),
			Def:    append([]byte(nil), d.bytes()...),
			RegSeq: d.uvarint(),
		})
	}
	if d.err != nil {
		return nil, d.err
	}
	return snap, nil
}

// recoverSnapshot loads the newest valid snapshot file into recSnap
// (invalid or torn snapshot files are skipped; older valid ones remain as
// fallbacks until the next compaction).
func (j *Journal) recoverSnapshot() error {
	paths, err := filepath.Glob(filepath.Join(j.dir, snapGlob))
	if err != nil {
		return err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var snap *Snapshot
		scanFrames(data, func(payload []byte) bool {
			s, err := decodeSnapshot(payload)
			if err == nil {
				snap = s
			}
			return false // one frame per snapshot file
		})
		if snap == nil {
			continue // torn or corrupt; try the next-older one
		}
		j.recSnap = snap
		j.snapLSN, j.snapSeq, j.haveSnap = snap.LSN, snap.Seq, true
		return nil
	}
	return nil
}

// compact deletes sealed segments fully covered by the latest snapshot and
// all older snapshot files, then recomputes the oldest replayable seq.
// Called with j.mu held, after a successful writeSnapshotLocked.
func (j *Journal) compact() error {
	// Seal the active segment first so it becomes eligible next time and
	// the new snapshot starts a clean segment boundary.
	if j.active != nil && j.active.info.size > 0 {
		if err := j.rotate(); err != nil {
			return err
		}
	}
	kept := j.segs[:0]
	for _, seg := range j.segs {
		if seg != j.activeInfo() && seg.maxLSN <= j.snapLSN {
			os.Remove(seg.path)
			continue
		}
		kept = append(kept, seg)
	}
	j.segs = kept

	snaps, err := filepath.Glob(filepath.Join(j.dir, snapGlob))
	if err != nil {
		return err
	}
	latest := filepath.Join(j.dir, snapName(j.snapLSN))
	for _, p := range snaps {
		if p != latest {
			os.Remove(p)
		}
	}
	j.recomputeOldest()
	return nil
}

func (j *Journal) activeInfo() *segmentInfo {
	if j.active == nil {
		return nil
	}
	return j.active.info
}

// recomputeOldest rederives the oldest replayable commit seq from the
// remaining disk segments and the ring. Called with j.mu held.
func (j *Journal) recomputeOldest() {
	j.haveOldest = false
	for _, seg := range j.segs {
		if seg.hasCommits {
			j.oldestSeq, j.haveOldest = seg.firstSeq, true
			break
		}
	}
	if len(j.ring) > 0 && (!j.haveOldest || j.ring[0].c.Seq < j.oldestSeq) {
		j.oldestSeq, j.haveOldest = j.ring[0].c.Seq, true
	}
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Best-effort: some platforms reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // best-effort
		d.Close()
	}
}
