package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config { return Config{Scale: 0.008, Seed: 3} }

func TestEveryDriverProducesRows(t *testing.T) {
	cfg := tiny()
	drivers := map[string]func(Config) Table{
		"Fig16a": Fig16a, "Fig16b": Fig16b, "Fig16c": Fig16c,
		"Fig17a": Fig17a, "Fig17b": Fig17b, "Fig17c": Fig17c, "Fig17d": Fig17d,
		"Fig18a": Fig18a, "Fig18b": Fig18b, "Fig18c": Fig18c, "Fig18d": Fig18d,
		"Fig19a": Fig19a, "Fig19b": Fig19b, "Fig19c": Fig19c, "Fig19d": Fig19d,
		"Fig20a": Fig20a, "Fig20b": Fig20b, "Fig20c": Fig20c, "Fig20d": Fig20d,
		"Fig20e": Fig20e, "Fig20f": Fig20f,
		"FigNet1":   FigNet1,
		"FigTrace1": FigTrace1,
		"Table1":    Table1Witnesses,
	}
	for name, fn := range drivers {
		tab := fn(cfg)
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", name)
		}
		if len(tab.Columns) == 0 {
			t.Errorf("%s: no columns", name)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("%s: row width %d != %d columns", name, len(row), len(tab.Columns))
			}
		}
	}
}

func TestTable1WitnessShape(t *testing.T) {
	tab := Table1Witnesses(tiny())
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 witness families, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] != "0" {
			t.Errorf("%s: |ΔM| after e1 = %s, want 0", row[0], row[2])
		}
		if row[3] == "0" {
			t.Errorf("%s: |ΔM| after e2 = 0, want Θ(n)", row[0])
		}
	}
}

func TestMinDeltaReductionMonotone(t *testing.T) {
	tab := Fig20a(tiny())
	for _, row := range tab.Rows {
		var orig, relevant int
		if _, err := fmt.Sscan(row[1], &orig); err != nil {
			t.Fatalf("bad original %q", row[1])
		}
		if _, err := fmt.Sscan(row[3], &relevant); err != nil {
			t.Fatalf("bad relevant %q", row[3])
		}
		if relevant > orig {
			t.Errorf("α=%s: relevant %d exceeds original %d", row[0], relevant, orig)
		}
	}
}

func TestNetworkFigureShape(t *testing.T) {
	tab := FigNet1(tiny())
	prevSaved := -1
	for _, row := range tab.Rows {
		var joins, saved int
		if _, err := fmt.Sscan(row[5], &joins); err != nil {
			t.Fatalf("bad joins %q", row[5])
		}
		if _, err := fmt.Sscan(row[6], &saved); err != nil {
			t.Fatalf("bad repairs saved %q", row[6])
		}
		// Renumbered patterns collapse onto their family's join, so the
		// join count is bounded by the family count regardless of N...
		if joins > 5 {
			t.Errorf("%s patterns: %d joins exceed the 5 families", row[0], joins)
		}
		// ...and the saved-repair count grows with the pattern count.
		if saved <= prevSaved {
			t.Errorf("%s patterns: repairs saved %d did not grow (prev %d)", row[0], saved, prevSaved)
		}
		prevSaved = saved
	}
}

func TestTracingFigureShape(t *testing.T) {
	tab := FigTrace1(tiny())
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 sampling rows, got %d", len(tab.Rows))
	}
	retained := make(map[string]int, 3)
	for _, row := range tab.Rows {
		var n int
		if _, err := fmt.Sscan(row[4], &n); err != nil {
			t.Fatalf("bad retained count %q", row[4])
		}
		retained[row[0]] = n
	}
	// Off must record nothing (the gated fast path); always retains one
	// trace per commit chunk.
	if retained["off"] != 0 {
		t.Errorf("off retained %d traces, want 0", retained["off"])
	}
	if retained["always"] != traceChunks {
		t.Errorf("always retained %d traces, want %d", retained["always"], traceChunks)
	}
	if r := retained["ratio:0.1"]; r <= 0 || r >= traceChunks {
		t.Errorf("ratio retained %d traces, want strictly between 0 and %d", r, traceChunks)
	}
}

func TestTablePrinting(t *testing.T) {
	tab := Table{
		Title:   "sample",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tab.AddRow(1, "x")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== sample ==", "a", "bb", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConfigs(t *testing.T) {
	if Default().Scale <= 0 || Paper().Scale != 1.0 {
		t.Fatal("config scales wrong")
	}
}
