package exp

// Drivers for Exp-1 and Exp-2 of Section 8.1: effectiveness and efficiency
// of bounded-simulation matching (Fig. 16) and the distance-oracle and
// scalability comparisons (Fig. 17).

import (
	"fmt"
	"time"

	"gpm/internal/core"
	"gpm/internal/distance"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/iso"
)

// vf2Cap bounds VF2 enumeration so adversarial workloads cannot hang the
// harness; the cap is reported when hit.
const vf2Cap = 100000

// Fig16a reproduces Exp-1's effectiveness study: over 20 generated YouTube
// patterns, how many matches per pattern node bounded simulation finds
// versus VF2, and for how many patterns VF2 comes up empty while Match does
// not.
func Fig16a(cfg Config) Table {
	t := Table{
		Title:   "Fig 16(a): effectiveness on YouTube — matches per pattern node",
		Columns: []string{"pattern", "VF2 embeddings", "Match pairs/node", "VF2 found none"},
	}
	g := cfg.youtube()
	vf2Empty, matchNonEmpty := 0, 0
	for i := 0; i < 20; i++ {
		// Embedded patterns mirror the paper's hand-built ones: every
		// pattern provably occurs in the graph at least once, and a spanning
		// edge budget keeps most of them edge-realizable so VF2 usually
		// succeeds too (the paper: 18 of 20).
		p := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: 4, Edges: 3 + i%2, Preds: 2, K: 3}, cfg.Seed+int64(i)*17)
		embeddings := len(iso.Enumerate(p.Normalized(), g, vf2Cap))
		rel := core.MatchBFS(p, g)
		perNode := float64(rel.Size()) / float64(p.NumNodes())
		none := embeddings == 0
		if none {
			vf2Empty++
		}
		if !rel.Empty() {
			matchNonEmpty++
		}
		t.AddRow(fmt.Sprintf("P%02d", i+1), embeddings, perNode, none)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("VF2 empty on %d/20 patterns; Match nonempty on %d/20", vf2Empty, matchNonEmpty))
	return t
}

// Fig16b reproduces the Match-vs-VF2 elapsed time comparison over pattern
// sizes (3,3)..(8,8) with k = 1 (favouring VF2) and k = 3.
func Fig16b(cfg Config) Table {
	t := Table{
		Title:   "Fig 16(b): Match vs VF2 efficiency on YouTube",
		Columns: []string{"(|Vp|,|Ep|)", "VF2", "Match(k=1)", "Match(k=3)"},
	}
	g := cfg.youtube()
	for size := 3; size <= 8; size++ {
		p1 := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: size, Edges: size, Preds: 2, K: 1}, cfg.Seed+int64(size))
		p3 := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: size, Edges: size, Preds: 2, K: 3}, cfg.Seed+int64(size))
		var dVF2, d1, d3 time.Duration
		dVF2 = timeIt(func() { iso.Enumerate(p1, g, vf2Cap) })
		d1 = timeIt(func() { core.MatchBFS(p1, g) })
		d3 = timeIt(func() { core.MatchBFS(p3, g) })
		t.AddRow(fmt.Sprintf("(%d,%d)", size, size), dVF2, d1, d3)
	}
	t.Notes = append(t.Notes, "expected shape: Match beats VF2 at every size; k=3 slightly slower than k=1")
	return t
}

// Fig16c reproduces the number-of-matches comparison: VF2 vs Match(k=1) vs
// Match(k=3).
func Fig16c(cfg Config) Table {
	t := Table{
		Title:   "Fig 16(c): #matches — VF2 vs Match(k=1) vs Match(k=3)",
		Columns: []string{"(|Vp|,|Ep|)", "VF2", "Match(k=1)", "Match(k=3)"},
	}
	g := cfg.youtube()
	for size := 3; size <= 8; size++ {
		p1 := generator.EmbeddedPattern(g, generator.PatternParams{Nodes: size, Edges: size, Preds: 2, K: 1}, cfg.Seed+int64(size))
		nVF2 := len(iso.Enumerate(p1, g, vf2Cap))
		n1 := core.MatchBFS(p1, g).Size()
		n3 := core.MatchBFS(p1.WithAllBounds(3), g).Size()
		t.AddRow(fmt.Sprintf("(%d,%d)", size, size), nVF2, n1, n3)
	}
	t.Notes = append(t.Notes, "expected shape: Match(k=3) >= Match(k=1), both typically >> VF2")
	return t
}

// Fig17a reproduces the oracle comparison on YouTube: Match with the
// all-pairs matrix, with 2-hop labels, and with on-demand BFS, over the
// pattern parameters (2,3,3)…(6,9,4).
func Fig17a(cfg Config) Table {
	return figOracles(cfg, "Fig 17(a): oracles on YouTube", cfg.youtube())
}

// Fig17b reproduces the oracle comparison on Citation.
func Fig17b(cfg Config) Table {
	return figOracles(cfg, "Fig 17(b): oracles on Citation", cfg.citation())
}

func figOracles(cfg Config, title string, g *graph.Graph) Table {
	t := Table{
		Title:   title,
		Columns: []string{"(|Vp|,|Ep|,k)", "Matrix+Match", "2hop+Match", "BFS+Match"},
	}
	// The oracle builds are shared across pattern sizes (the paper's matrix
	// "computed once and shared by all patterns"); build times are reported
	// as a note.
	var mtx *distance.Matrix
	var hop *distance.TwoHop
	dMtxBuild := timeIt(func() { mtx = distance.NewMatrix(g) })
	dHopBuild := timeIt(func() { hop = distance.NewTwoHop(g) })
	params := [][3]int{{2, 3, 3}, {2, 3, 4}, {4, 6, 3}, {4, 6, 4}, {6, 9, 3}, {6, 9, 4}}
	for _, pr := range params {
		p := generator.Pattern(g, generator.PatternParams{Nodes: pr[0], Edges: pr[1], Preds: 2, K: pr[2]}, cfg.Seed+int64(pr[0]*10+pr[2]))
		dMtx := timeIt(func() { core.Match(p, g, core.WithOracle(mtx)) })
		dHop := timeIt(func() { core.Match(p, g, core.WithOracle(hop)) })
		dBFS := timeIt(func() { core.MatchBFS(p, g) })
		t.AddRow(fmt.Sprintf("(%d,%d,%d)", pr[0], pr[1], pr[2]), dMtx, dHop, dBFS)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("one-off builds: matrix %s (%d nodes), 2-hop %s (%d label entries)",
			fmtDuration(dMtxBuild), g.NumNodes(), fmtDuration(dHopBuild), hop.LabelEntries()),
		"expected shape: Matrix+Match fastest per query; costs grow with pattern size and k")
	return t
}

// Fig17c reproduces the pattern-size scalability of Match via BFS: |Vp| =
// |Ep| from 3 to 8 at k ∈ {3, 4} on the synthetic graph (the paper used
// 1M/2M; the scale factor shrinks it proportionally).
func Fig17c(cfg Config) Table {
	t := Table{
		Title:   "Fig 17(c): Match (BFS) vs pattern size on synthetic",
		Columns: []string{"|Vp|=|Ep|", "k=3", "k=4"},
	}
	g := cfg.synthetic(1000000, 2000000)
	for size := 3; size <= 8; size++ {
		// Average over pattern draws to smooth selectivity noise.
		var d3, d4 time.Duration
		const reps = 3
		for r := int64(0); r < reps; r++ {
			p := generator.Pattern(g, generator.PatternParams{Nodes: size, Edges: size, Preds: 2, K: 3}, cfg.Seed+int64(size)*10+r)
			d3 += timeIt(func() { core.MatchBFS(p, g) })
			d4 += timeIt(func() { core.MatchBFS(p.WithAllBounds(4), g) })
		}
		t.AddRow(size, d3/reps, d4/reps)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("graph: %d nodes, %d edges", g.NumNodes(), g.NumEdges()),
		"expected shape: time grows with pattern size; k=4 costlier than k=3")
	return t
}

// Fig17d reproduces the graph-size scalability of Match via BFS: |V| swept
// with |E| = 2|V|, for the two fixed patterns P1 = (3,3,3) and P2 = (4,4,3).
func Fig17d(cfg Config) Table {
	t := Table{
		Title:   "Fig 17(d): Match (BFS) vs graph size on synthetic",
		Columns: []string{"|V|", "P1 (3,3,3)", "P2 (4,4,3)"},
	}
	for i := 3; i <= 10; i++ {
		n := scaled(i*100000, cfg.Scale, 60)
		g := generator.Synthetic(n, 2*n, generator.DefaultSchema(8), cfg.Seed)
		var d1, d2 time.Duration
		const reps = 3
		for r := int64(0); r < reps; r++ {
			p1 := generator.Pattern(g, generator.PatternParams{Nodes: 3, Edges: 3, Preds: 2, K: 3}, cfg.Seed+1+r)
			p2 := generator.Pattern(g, generator.PatternParams{Nodes: 4, Edges: 4, Preds: 2, K: 3}, cfg.Seed+100+r)
			d1 += timeIt(func() { core.MatchBFS(p1, g) })
			d2 += timeIt(func() { core.MatchBFS(p2, g) })
		}
		t.AddRow(n, d1/reps, d2/reps)
	}
	t.Notes = append(t.Notes, "expected shape: near-linear growth in |V|; P2 above P1")
	return t
}
