package exp

// Driver for the shared sub-pattern evaluation network study (not a paper
// figure — it measures this implementation's RETE-style extension): as the
// number of structurally-overlapping standing patterns grows, the shared
// network's per-pattern marginal commit cost should fall well below the
// one-private-engine-per-pattern organisation, because renumbered copies
// of a pattern collapse onto one shared join node that is repaired once
// per commit.

import (
	"fmt"
	"math/rand"
	"time"

	"gpm/internal/contq"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

// netRenumber relabels p by the permutation m (m[orig] = new id).
func netRenumber(p *pattern.Pattern, m []int) *pattern.Pattern {
	inv := make([]int, len(m))
	for u, c := range m {
		inv[c] = u
	}
	q := pattern.New()
	for c := range inv {
		q.AddNode(p.Pred(inv[c]))
	}
	for _, e := range p.Edges() {
		if err := q.AddColoredEdge(m[e.From], m[e.To], e.Bound, e.Color); err != nil {
			panic(err)
		}
	}
	return q
}

// netCommitCost registers pats and times committing the update stream in
// chunks, returning the total wall-clock and the registry's final stats.
func netCommitCost(base *graph.Graph, pats []*pattern.Pattern, ups []graph.Update, shared bool) (time.Duration, contq.Stats) {
	var opts []contq.Option
	if !shared {
		opts = append(opts, contq.WithoutNetwork())
	}
	reg := contq.New(base.Clone(), opts...)
	defer reg.Close()
	for i, p := range pats {
		if err := reg.Register(fmt.Sprintf("p%03d", i), p, contq.KindSim); err != nil {
			panic(err)
		}
	}
	const chunks = 10
	per := (len(ups) + chunks - 1) / chunks
	d := timeIt(func() {
		for at := 0; at < len(ups); at += per {
			end := at + per
			if end > len(ups) {
				end = len(ups)
			}
			if _, err := reg.Apply(ups[at:end]); err != nil {
				panic(err)
			}
		}
	})
	return d, reg.Stats()
}

// FigNet1 measures the marginal cost of overlapping standing patterns:
// N patterns drawn as renumberings of 5 structural families, one fixed
// update stream, shared network vs private engines.
func FigNet1(cfg Config) Table {
	t := Table{
		Title:   "Net 1: marginal cost of overlapping standing patterns — shared network vs private engines",
		Columns: []string{"patterns", "shared total", "shared/pat", "private total", "private/pat", "joins", "repairs saved"},
	}
	n := scaled(10000, cfg.Scale, 120)
	m := scaled(30000, cfg.Scale, 360)
	base := generator.Synthetic(n, m, generator.DefaultSchema(4), cfg.Seed)
	nUps := scaled(2000, cfg.Scale, 60)
	ups := generator.Updates(base, nUps/2, nUps/2, cfg.Seed+7)

	const families = 5
	protos := make([]*pattern.Pattern, families)
	for f := range protos {
		protos[f] = generator.Pattern(base, generator.PatternParams{Nodes: 3 + f%3, Edges: 3 + f%3, Preds: 1, K: 1}, cfg.Seed+int64(61+f))
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 71))
	for _, nPats := range []int{10, 25, 50, 100} {
		pats := make([]*pattern.Pattern, nPats)
		for i := range pats {
			proto := protos[i%families]
			pats[i] = netRenumber(proto, rng.Perm(proto.NumNodes()))
		}
		dShared, sShared := netCommitCost(base, pats, ups, true)
		dPriv, _ := netCommitCost(base, pats, ups, false)
		ns := sShared.Network
		t.AddRow(nPats, dShared, dShared/time.Duration(nPats), dPriv, dPriv/time.Duration(nPats),
			ns.JoinNodes, ns.RepairsSaved)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d structural families; every pattern is a renumbering of one of them", families),
		"expected shape: shared/pat falls as patterns grow (joins stay ~5); private/pat stays flat")
	return t
}
