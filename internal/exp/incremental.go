package exp

// Drivers for Section 8.2 Exp-1 and Exp-2: incremental simulation versus
// its batch counterpart and HORNSAT (Fig. 18), and incremental bounded
// simulation versus batch and the matrix baseline (Fig. 19).

import (
	"fmt"
	"time"

	"gpm/internal/core"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/hornsat"
	"gpm/internal/incbsim"
	"gpm/internal/incsim"
	"gpm/internal/pattern"
	"gpm/internal/simulation"
)

// simContenders measures one update batch for each Fig. 18 contender,
// starting every contender from an identical (graph, match) state.
//   - Matchs: batch recomputation on the updated graph
//   - IncMatchn: naive one-at-a-time incremental
//   - IncMatch: batch incremental with minDelta
//   - HORNSAT: Shukla et al. re-propagation (skipped when cfg says so)
func simContenders(cfg Config, g *graph.Graph, p *pattern.Pattern, ups []graph.Update) (dBatch, dNaive, dInc, dHorn time.Duration, hornRan bool) {
	// Matchs: apply updates to a clone, recompute from scratch.
	gBatch := g.Clone()
	dBatch = timeIt(func() {
		gBatch.ApplyAll(ups) //nolint:errcheck
		simulation.Maximum(p, gBatch)
	})

	gN := g.Clone()
	eN, err := incsim.New(p, gN)
	if err != nil {
		panic(err)
	}
	dNaive = timeIt(func() { eN.Apply(ups) })

	gI := g.Clone()
	eI, err := incsim.New(p, gI)
	if err != nil {
		panic(err)
	}
	dInc = timeIt(func() { eI.Batch(ups) })

	if !cfg.SkipSlowBaselines {
		gH := g.Clone()
		eH, err := hornsat.New(p, gH)
		if err != nil {
			panic(err)
		}
		dHorn = timeIt(func() { eH.Apply(ups) })
		hornRan = true
		if !eH.Result().Equal(eI.Result()) {
			panic("exp: HORNSAT result diverged from IncMatch")
		}
	}
	if !eN.Result().Equal(eI.Result()) {
		panic("exp: IncMatchn result diverged from IncMatch")
	}
	return dBatch, dNaive, dInc, dHorn, hornRan
}

// figIncSim renders one Fig. 18 panel: the contenders across a sweep of
// update sizes (positive = insertions, negative = deletions).
func figIncSim(cfg Config, title string, g *graph.Graph, deltas []int) Table {
	t := Table{
		Title:   title,
		Columns: []string{"|ΔG|", "Matchs", "IncMatchn", "IncMatch", "HORNSAT"},
	}
	p := generator.Pattern(g, generator.PatternParams{Nodes: 4, Edges: 5, Preds: 2, K: 1}, cfg.Seed+11)
	for _, d := range deltas {
		var ups []graph.Update
		if d >= 0 {
			ups = generator.Updates(g, d, 0, cfg.Seed+int64(d))
		} else {
			ups = generator.Updates(g, 0, -d, cfg.Seed+int64(-d))
		}
		// Real update streams carry churn; a quarter of the stream is
		// inverted again within the same batch, which minDelta cancels and
		// the naive engine pays for twice.
		for _, up := range ups[:len(ups)/4] {
			ups = append(ups, up.Inverse())
		}
		dBatch, dNaive, dInc, dHorn, hornRan := simContenders(cfg, g, p, ups)
		horn := "skipped"
		if hornRan {
			horn = fmtDuration(dHorn)
		}
		t.AddRow(len(ups), dBatch, dNaive, dInc, horn)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("graph: %d nodes, %d edges", g.NumNodes(), g.NumEdges()),
		"expected shape: IncMatch < IncMatchn < HORNSAT; IncMatch beats Matchs for small ΔG (≲30%)")
	return t
}

// Fig18a: incremental simulation, edge insertions on synthetic data
// (paper: 17k nodes, |E| 78k→108k in 3k steps).
func Fig18a(cfg Config) Table {
	g := cfg.synthetic(17000, 78000)
	base := scaled(3000, cfg.Scale, 20)
	var deltas []int
	for i := 1; i <= 5; i++ {
		deltas = append(deltas, i*2*base/2)
	}
	return figIncSim(cfg, "Fig 18(a): IncSim insertions on synthetic", g, deltas)
}

// Fig18b: incremental simulation, edge deletions on synthetic data.
func Fig18b(cfg Config) Table {
	g := cfg.synthetic(17000, 108000)
	base := scaled(3000, cfg.Scale, 20)
	var deltas []int
	for i := 1; i <= 5; i++ {
		deltas = append(deltas, -i*base)
	}
	return figIncSim(cfg, "Fig 18(b): IncSim deletions on synthetic", g, deltas)
}

// Fig18c: incremental simulation on the evolving YouTube graph.
func Fig18c(cfg Config) Table {
	g := cfg.youtube()
	base := scaled(2000, cfg.Scale, 15)
	return figIncSim(cfg, "Fig 18(c): IncSim on YouTube (insertions)", g,
		[]int{base, 2 * base, 3 * base, 4 * base, 5 * base})
}

// Fig18d: incremental simulation on the evolving Citation graph.
func Fig18d(cfg Config) Table {
	g := cfg.citation()
	base := scaled(2000, cfg.Scale, 15)
	return figIncSim(cfg, "Fig 18(d): IncSim on Citation (insertions)", g,
		[]int{base, 2 * base, 3 * base, 4 * base, 5 * base})
}

// bsimContenders measures one update batch for each Fig. 19 contender.
//   - Matchbs: batch bounded-simulation recomputation (Match via BFS)
//   - IncBMatchm: the distance-matrix baseline of Fan et al. 2010
//   - IncBMatch: the landmark/affected-area incremental algorithm
func bsimContenders(cfg Config, g *graph.Graph, p *pattern.Pattern, ups []graph.Update) (dBatch, dMatrix, dInc time.Duration, matrixRan bool) {
	// Matchbs recomputes from scratch including the all-pairs distance
	// matrix — line 1 of algorithm Match (Fig. 3), as in Fan et al. 2010.
	gBatch := g.Clone()
	dBatch = timeIt(func() {
		gBatch.ApplyAll(ups) //nolint:errcheck
		core.MatchMatrix(p, gBatch)
	})

	gI := g.Clone()
	eI, err := incbsim.New(p, gI)
	if err != nil {
		panic(err)
	}
	dInc = timeIt(func() { eI.Batch(ups) })

	if !cfg.SkipSlowBaselines {
		gM := g.Clone()
		eM, err := incbsim.NewMatrix(p, gM)
		if err != nil {
			panic(err)
		}
		dMatrix = timeIt(func() { eM.Batch(ups) })
		matrixRan = true
		if !eM.Result().Equal(eI.Result()) {
			panic("exp: IncBMatchm result diverged from IncBMatch")
		}
	}
	return dBatch, dMatrix, dInc, matrixRan
}

// figIncBSim renders one Fig. 19 panel.
func figIncBSim(cfg Config, title string, g *graph.Graph, deltas []int, k int) Table {
	t := Table{
		Title:   title,
		Columns: []string{"|ΔG|", "Matchbs", "IncBMatchm", "IncBMatch"},
	}
	p := generator.DAGPattern(g, generator.PatternParams{Nodes: 4, Edges: 5, Preds: 2, K: k}, cfg.Seed+13)
	for _, d := range deltas {
		var ups []graph.Update
		if d >= 0 {
			ups = generator.Updates(g, d, 0, cfg.Seed+int64(d))
		} else {
			ups = generator.Updates(g, 0, -d, cfg.Seed+int64(-d))
		}
		dBatch, dMatrix, dInc, matrixRan := bsimContenders(cfg, g, p, ups)
		mtx := "skipped"
		if matrixRan {
			mtx = fmtDuration(dMatrix)
		}
		t.AddRow(len(ups), dBatch, mtx, dInc)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("graph: %d nodes, %d edges; DAG pattern k=%d", g.NumNodes(), g.NumEdges(), k),
		"expected shape: IncBMatch < IncBMatchm; IncBMatch beats Matchbs for small ΔG (≲10%)")
	return t
}

// Fig19a: incremental bounded simulation, insertions on synthetic data.
func Fig19a(cfg Config) Table {
	g := cfg.synthetic(17000, 98000)
	base := scaled(1000, cfg.Scale, 8)
	return figIncBSim(cfg, "Fig 19(a): IncBSim insertions on synthetic", g,
		[]int{base, 2 * base, 3 * base, 4 * base, 5 * base}, 3)
}

// Fig19b: incremental bounded simulation, deletions on synthetic data.
func Fig19b(cfg Config) Table {
	g := cfg.synthetic(17000, 108000)
	base := scaled(1000, cfg.Scale, 8)
	return figIncBSim(cfg, "Fig 19(b): IncBSim deletions on synthetic", g,
		[]int{-base, -2 * base, -3 * base, -4 * base, -5 * base}, 3)
}

// Fig19c: incremental bounded simulation on YouTube.
func Fig19c(cfg Config) Table {
	g := cfg.youtube()
	base := scaled(1000, cfg.Scale, 8)
	return figIncBSim(cfg, "Fig 19(c): IncBSim on YouTube (insertions)", g,
		[]int{base, 2 * base, 3 * base, 4 * base, 5 * base}, 3)
}

// Fig19d: incremental bounded simulation on Citation.
func Fig19d(cfg Config) Table {
	g := cfg.citation()
	base := scaled(1000, cfg.Scale, 8)
	return figIncBSim(cfg, "Fig 19(d): IncBSim on Citation (insertions)", g,
		[]int{base, 2 * base, 3 * base, 4 * base, 5 * base}, 3)
}
