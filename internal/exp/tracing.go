package exp

// Driver for the commit-tracing overhead study (not a paper figure — it
// gates this implementation's observability): the span tracer must be
// free when sampling is off (the nil-span fast path gpbench measures
// everywhere else) and cheap enough to leave on in production when
// sampling every commit.

import (
	"context"
	"fmt"
	"time"

	"gpm/internal/contq"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/obs/trace"
	"gpm/internal/pattern"
)

// traceCommitCost registers pats on a registry wired to tr and times
// committing ups in chunks, each chunk applied under its own root span —
// a no-op root when tr does not sample, which is exactly the production
// default path.
// traceChunks is the number of Apply calls (= commits, absent
// coalescing) each policy run makes.
const traceChunks = 50

func traceCommitCost(base *graph.Graph, pats []*pattern.Pattern, ups []graph.Update, tr *trace.Tracer) (time.Duration, int) {
	reg := contq.New(base.Clone(), contq.WithTracer(tr))
	defer reg.Close()
	for i, p := range pats {
		if err := reg.Register(fmt.Sprintf("p%03d", i), p, contq.KindSim); err != nil {
			panic(err)
		}
	}
	per := (len(ups) + traceChunks - 1) / traceChunks
	d := timeIt(func() {
		for at := 0; at < len(ups); at += per {
			end := at + per
			if end > len(ups) {
				end = len(ups)
			}
			root := tr.StartRoot("bench.apply")
			ctx := trace.NewContext(context.Background(), root.Context())
			if _, err := reg.ApplyContext(ctx, ups[at:end]); err != nil {
				panic(err)
			}
			root.End()
		}
	})
	return d, tr.Len()
}

// FigTrace1 measures end-to-end commit tracing overhead: one pattern set
// and one update stream committed under each sampling policy. The "off"
// row is the path every other figure runs on — CI gates it against the
// untraced baseline — and the "always" row bounds the cost of sampling
// every commit with full stage spans.
func FigTrace1(cfg Config) Table {
	t := Table{
		Title:   "Trace 1: commit tracing overhead by sampling policy",
		Columns: []string{"sampling", "total", "per-commit", "vs off", "retained traces"},
	}
	n := scaled(10000, cfg.Scale, 120)
	m := scaled(30000, cfg.Scale, 360)
	base := generator.Synthetic(n, m, generator.DefaultSchema(4), cfg.Seed)
	nUps := scaled(2000, cfg.Scale, 100)
	ups := generator.Updates(base, nUps/2, nUps/2, cfg.Seed+7)

	const nPats = 10
	pats := make([]*pattern.Pattern, nPats)
	for i := range pats {
		pats[i] = generator.Pattern(base, generator.PatternParams{Nodes: 3 + i%3, Edges: 3 + i%3, Preds: 1, K: 1}, cfg.Seed+int64(41+i))
	}

	policies := []struct {
		name string
		cfg  trace.Config
	}{
		{"off", trace.Config{Mode: trace.ModeOff}},
		{"ratio:0.1", trace.Config{Mode: trace.ModeRatio, Ratio: 0.1}},
		{"always", trace.Config{Mode: trace.ModeAlways}},
	}
	var dOff time.Duration
	for _, pol := range policies {
		d, retained := traceCommitCost(base, pats, ups, trace.New(pol.cfg))
		if pol.name == "off" {
			dOff = d
		}
		ratio := "1.00x"
		if dOff > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(d)/float64(dOff))
		}
		t.AddRow(pol.name, d, d/traceChunks, ratio, retained)
	}
	t.Notes = append(t.Notes,
		"off must match the untraced pipeline (nil-span fast path); CI gates this row's figure timing",
		"always adds one span per commit stage plus ring bookkeeping; ratio samples deterministically by trace ID")
	return t
}
