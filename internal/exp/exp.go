// Package exp is the experiment harness: one driver per table/figure of the
// paper's Section 8, each regenerating the figure's rows or series. The
// drivers run at a configurable scale — Default() is laptop-quick and keeps
// every run in seconds; Paper() reproduces the paper's dataset sizes.
// Absolute numbers differ from the paper's 2010-era testbed; the shapes
// (who wins, by what factor, where crossovers fall) are the reproduction
// target, recorded in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"

	"gpm/internal/generator"
	"gpm/internal/graph"
)

// Config controls dataset sizes and randomness for all drivers.
type Config struct {
	// Scale multiplies the paper's dataset sizes (1.0 = paper size).
	Scale float64
	// Seed drives all generators.
	Seed int64
	// SkipSlowBaselines drops the intentionally unscalable baselines
	// (HORNSAT, IncBMatchᵐ, VF2 full enumeration) from the large runs.
	SkipSlowBaselines bool
}

// Default returns the quick configuration used by tests and benchmarks.
func Default() Config { return Config{Scale: 0.04, Seed: 1} }

// Paper returns the configuration matching the paper's dataset sizes.
// Expect minutes-to-hours runtimes and gigabytes of memory for the
// matrix-based variants.
func Paper() Config { return Config{Scale: 1.0, Seed: 1, SkipSlowBaselines: true} }

// Table is a printable result table: one per figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = fmtDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// timeIt measures one execution of f.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// scaled returns max(lo, round(x*scale)).
func scaled(x int, scale float64, lo int) int {
	n := int(float64(x) * scale)
	if n < lo {
		n = lo
	}
	return n
}

// datasets for the experiment sections.

func (cfg Config) youtube() *graph.Graph { return generator.YouTube(cfg.Scale, cfg.Seed) }

func (cfg Config) citation() *graph.Graph { return generator.Citation(cfg.Scale, cfg.Seed) }

func (cfg Config) synthetic(nBase, mBase int) *graph.Graph {
	n := scaled(nBase, cfg.Scale, 50)
	m := scaled(mBase, cfg.Scale, 100)
	return generator.Synthetic(n, m, generator.DefaultSchema(8), cfg.Seed)
}

// All runs every driver and prints the tables to w.
func All(cfg Config, w io.Writer) {
	for _, t := range AllTables(cfg) {
		t.Fprint(w)
	}
}

// AllTables runs every driver.
func AllTables(cfg Config) []Table {
	return []Table{
		Fig16a(cfg),
		Fig16b(cfg),
		Fig16c(cfg),
		Fig17a(cfg),
		Fig17b(cfg),
		Fig17c(cfg),
		Fig17d(cfg),
		Fig18a(cfg),
		Fig18b(cfg),
		Fig18c(cfg),
		Fig18d(cfg),
		Fig19a(cfg),
		Fig19b(cfg),
		Fig19c(cfg),
		Fig19d(cfg),
		Fig20a(cfg),
		Fig20b(cfg),
		Fig20c(cfg),
		Fig20d(cfg),
		Fig20e(cfg),
		Fig20f(cfg),
		Table1Witnesses(cfg),
	}
}
