package exp

// Drivers for Section 8.2 Exp-3 (Fig. 20): the minDelta update reduction,
// landmark/distance-vector space and maintenance costs, and the Table-1
// unboundedness witnesses.

import (
	"fmt"

	"gpm/internal/fixtures"
	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/incbsim"
	"gpm/internal/incsim"
	"gpm/internal/iso"
	"gpm/internal/landmark"
	"gpm/internal/simulation"
)

// Fig20a reproduces the minDelta update-reduction study: 4k mixed updates
// against 20k-node graphs of increasing density α (|E| = |V|^α).
func Fig20a(cfg Config) Table {
	t := Table{
		Title:   "Fig 20(a): minDelta update reduction vs α",
		Columns: []string{"α", "original", "effective", "relevant (reduced)"},
	}
	n := scaled(20000, cfg.Scale, 200)
	nUps := scaled(4000, cfg.Scale, 400)
	for _, alpha := range []float64{1.0, 1.05, 1.1, 1.15, 1.2} {
		g := generator.SyntheticAlpha(n, alpha, generator.DefaultSchema(8), cfg.Seed)
		// Label-only predicates keep the candidate universe broad, as in
		// the paper's normal patterns.
		p := generator.Pattern(g, generator.PatternParams{Nodes: 4, Edges: 5, Preds: 1, K: 1}, cfg.Seed+23)
		e, err := incsim.New(p, g)
		if err != nil {
			panic(err)
		}
		ups := generator.Updates(g, nUps/2, nUps/2, cfg.Seed+31)
		res := e.MinDelta(ups)
		t.AddRow(fmt.Sprintf("%.2f", alpha), res.Original, res.Effective, res.Relevant)
	}
	t.Notes = append(t.Notes, "expected shape: reduction grows with α (denser graphs → more redundant updates)")
	return t
}

// Fig20b reproduces the landmark space study: the footprint of an
// InsLM-maintained index versus a BatchLM rebuild as insertions accumulate.
func Fig20b(cfg Config) Table {
	t := Table{
		Title:   "Fig 20(b): landmark+distance vector space — InsLM vs BatchLM",
		Columns: []string{"#insertions", "InsLM bytes", "BatchLM bytes", "overhead"},
	}
	n := scaled(10000, cfg.Scale, 150)
	g := generator.SyntheticAlpha(n, 1.1, generator.DefaultSchema(8), cfg.Seed)
	ix := landmark.New(g.Clone())
	maintained := ix.Graph()
	steps := 5
	per := scaled(1000, cfg.Scale, 12)
	for i := 1; i <= steps; i++ {
		ups := generator.Updates(maintained, per, 0, cfg.Seed+int64(i))
		for _, up := range ups {
			ix.Insert(up.From, up.To)
		}
		fresh := landmark.New(maintained.Clone())
		over := float64(ix.Bytes()-fresh.Bytes()) / float64(fresh.Bytes()) * 100
		t.AddRow(i*per, ix.Bytes(), fresh.Bytes(), fmt.Sprintf("%+.1f%%", over))
	}
	t.Notes = append(t.Notes, "expected shape: a few percent overhead versus rebuilding, far below an O(|V|²) matrix")
	return t
}

// Fig20c reproduces the unit-maintenance comparison on YouTube: InsLM vs a
// BatchLM rebuild for insertions, DelLM vs rebuild for deletions.
func Fig20c(cfg Config) Table {
	t := Table{
		Title:   "Fig 20(c): InsLM/DelLM vs BatchLM on YouTube",
		Columns: []string{"|ΔE|", "InsLM", "BatchLM(+)", "DelLM", "BatchLM(-)"},
	}
	base := cfg.youtube()
	per := scaled(500, cfg.Scale, 8)
	for i := 1; i <= 5; i++ {
		k := i * per
		// Insertions.
		gIns := base.Clone()
		ixIns := landmark.New(gIns)
		insUps := generator.Updates(gIns, k, 0, cfg.Seed+int64(i))
		dIns := timeIt(func() {
			for _, up := range insUps {
				ixIns.Insert(up.From, up.To)
			}
		})
		gInsB := base.Clone()
		dInsBatch := timeIt(func() {
			gInsB.ApplyAll(insUps) //nolint:errcheck
			landmark.New(gInsB)
		})
		// Deletions.
		gDel := base.Clone()
		ixDel := landmark.New(gDel)
		delUps := generator.Updates(gDel, 0, k, cfg.Seed+int64(i))
		dDel := timeIt(func() {
			for _, up := range delUps {
				ixDel.Delete(up.From, up.To)
			}
		})
		gDelB := base.Clone()
		dDelBatch := timeIt(func() {
			gDelB.ApplyAll(delUps) //nolint:errcheck
			landmark.New(gDelB)
		})
		t.AddRow(k, dIns, dInsBatch, dDel, dDelBatch)
	}
	t.Notes = append(t.Notes, "expected shape: InsLM/DelLM a small fraction of the rebuild cost")
	return t
}

// Fig20d reproduces IncLM vs BatchLM under mixed batches.
func Fig20d(cfg Config) Table {
	t := Table{
		Title:   "Fig 20(d): IncLM vs BatchLM on YouTube (mixed updates)",
		Columns: []string{"|ΔE|", "IncLM", "BatchLM"},
	}
	// The rebuild-vs-maintain ratio only shows at a representative graph
	// size; run this figure at 4× the configured scale (capped to bound the
	// distance-vector memory).
	big := cfg
	big.Scale = cfg.Scale * 4
	if big.Scale > 0.3 {
		big.Scale = 0.3
	}
	base := big.youtube()
	per := scaled(1000, cfg.Scale, 10)
	for i := 1; i <= 6; i++ {
		k := i * per
		gInc := base.Clone()
		ix := landmark.New(gInc)
		ups := generator.Updates(gInc, k/2, k/2, cfg.Seed+int64(i))
		dInc := timeIt(func() { ix.Batch(ups) })
		gB := base.Clone()
		dBatch := timeIt(func() {
			gB.ApplyAll(ups) //nolint:errcheck
			landmark.New(gB)
		})
		t.AddRow(k, dInc, dBatch)
	}
	t.Notes = append(t.Notes, "expected shape: IncLM a small fraction of BatchLM (paper: ~15% at 6k updates)")
	return t
}

// Fig20e reproduces the bound sensitivity: the cost of landmark-backed
// incremental bounded matching as the maximum pattern bound k grows (the
// affected area the sweep must inspect grows with k).
func Fig20e(cfg Config) Table {
	t := Table{
		Title:   "Fig 20(e): IncBMatch+IncLM update cost vs bound k on Citation",
		Columns: []string{"k", "incremental update time", "affected pairs"},
	}
	base := cfg.citation()
	nUps := scaled(1000, cfg.Scale, 10)
	// One pattern topology, re-bounded per k, so that k is the only
	// variable across rows.
	proto := generator.DAGPattern(base, generator.PatternParams{Nodes: 4, Edges: 5, Preds: 2, K: 3}, cfg.Seed+41)
	ups := generator.Updates(base, nUps/2, nUps/2, cfg.Seed+51)
	for k := 3; k <= 6; k++ {
		g := base.Clone()
		ix := landmark.New(g)
		e, err := incbsim.New(proto.WithAllBounds(k), g, incbsim.WithLandmarkIndex(ix))
		if err != nil {
			panic(err)
		}
		d := timeIt(func() { e.Batch(ups) })
		t.AddRow(k, d, e.Stats().PairsExamined)
	}
	t.Notes = append(t.Notes, "expected shape: affected pairs (and typically time) grow with k — larger km-hop areas")
	return t
}

// Fig20f reproduces IncLM vs the naive InsLM+DelLM loop on synthetic data.
func Fig20f(cfg Config) Table {
	t := Table{
		Title:   "Fig 20(f): IncLM vs InsLM+DelLM on synthetic",
		Columns: []string{"|ΔE|", "InsLM+DelLM", "IncLM"},
	}
	n := scaled(15000, cfg.Scale, 150)
	m := scaled(40000, cfg.Scale, 400)
	base := generator.Synthetic(n, m, generator.DefaultSchema(8), cfg.Seed)
	per := scaled(500, cfg.Scale, 8)
	for i := 1; i <= 6; i++ {
		k := i * per
		ups := generator.Updates(base, k/2, k/2, cfg.Seed+int64(i))
		// Redundancy so cancellation has something to remove: append the
		// inverse of a third of the updates.
		extra := ups[:len(ups)/3]
		for _, up := range extra {
			ups = append(ups, up.Inverse())
		}
		gNaive := base.Clone()
		ixNaive := landmark.New(gNaive)
		dNaive := timeIt(func() {
			for _, up := range ups {
				if up.Op == graph.InsertEdge {
					ixNaive.Insert(up.From, up.To)
				} else {
					ixNaive.Delete(up.From, up.To)
				}
			}
		})
		gInc := base.Clone()
		ixInc := landmark.New(gInc)
		dInc := timeIt(func() { ixInc.Batch(ups) })
		t.AddRow(len(ups), dNaive, dInc)
	}
	t.Notes = append(t.Notes, "expected shape: IncLM consistently below the naive loop (paper: ~20%)")
	return t
}

// Table1Witnesses exercises the unboundedness witness families of Figs. 6,
// 11 and 15 (Theorems 5.1(1), 6.1(1), 7.1(2)): for each, two unit
// insertions where the first changes nothing and the second changes O(n)
// of the output at once — no bound on |ΔM| in terms of |ΔG| exists.
func Table1Witnesses(cfg Config) Table {
	t := Table{
		Title:   "Table 1: unboundedness witnesses (|ΔM| after each unit insertion)",
		Columns: []string{"family", "n", "|ΔM| after e1", "|ΔM| after e2"},
	}
	n := scaled(2000, cfg.Scale, 40)

	// Incremental simulation witness (Fig. 6).
	{
		p, g, ups := fixtures.SimWitness(n)
		e, err := incsim.New(p, g)
		if err != nil {
			panic(err)
		}
		before := e.Result().Size()
		e.Insert(ups.E1.From, ups.E1.To)
		after1 := e.Result().Size()
		e.Insert(ups.E2.From, ups.E2.To)
		after2 := e.Result().Size()
		t.AddRow("IncSim / Fig 6", 2*n, after1-before, after2-after1)
		if !e.Result().Equal(simulation.Maximum(p, g)) {
			panic("exp: witness result mismatch")
		}
	}
	// Incremental bounded simulation witness (Fig. 11).
	{
		p, g, ups := fixtures.BSimWitness(n, n, n)
		e, err := incbsim.New(p, g)
		if err != nil {
			panic(err)
		}
		before := e.Result().Size()
		e.Insert(ups.E1.From, ups.E1.To)
		after1 := e.Result().Size()
		e.Insert(ups.E2.From, ups.E2.To)
		after2 := e.Result().Size()
		t.AddRow("IncBSim / Fig 11", 3*n, after1-before, after2-after1)
	}
	// Incremental subgraph isomorphism witness (Fig. 15).
	{
		wn := 6 // embeddings explode combinatorially: keep the tree small
		p, g, ups := fixtures.IsoWitness(wn, wn)
		e := iso.NewEngine(p, g)
		before := e.Count()
		e.Insert(ups.E1.From, ups.E1.To)
		after1 := e.Count()
		e.Insert(ups.E2.From, ups.E2.To)
		after2 := e.Count()
		t.AddRow("IncIso / Fig 15", 2+4*wn, after1-before, after2-after1)
	}
	t.Notes = append(t.Notes, "expected shape: column 3 is 0, column 4 is Θ(n) — unit updates with unbounded |ΔM|")
	return t
}
