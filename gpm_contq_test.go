package gpm_test

import (
	"testing"

	"gpm"
)

// TestRegistryFacade drives the continuous-query subsystem through the
// public façade: register a standing pattern, subscribe, commit updates,
// and check the snapshot-plus-deltas invariant.
func TestRegistryFacade(t *testing.T) {
	g := gpm.NewGraph()
	boss := g.AddNode(gpm.NewTuple("label", `"B"`))
	am := g.AddNode(gpm.NewTuple("label", `"AM"`))
	am2 := g.AddNode(gpm.NewTuple("label", `"AM"`))
	c := g.AddNode(gpm.NewTuple("label", `"C"`))
	g.AddEdge(boss, am)
	g.AddEdge(am, c)

	p := gpm.NewPattern()
	pb := p.AddNode(gpm.Label("B"))
	pa := p.AddNode(gpm.Label("AM"))
	pc := p.AddNode(gpm.Label("C"))
	if err := p.AddEdge(pb, pa, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEdge(pa, pc, 1); err != nil {
		t.Fatal(err)
	}

	reg := gpm.NewRegistry(g)
	defer reg.Close()
	if err := reg.Register("ring", p, gpm.KindAuto); err != nil {
		t.Fatal(err)
	}
	sub, err := reg.Subscribe("ring")
	if err != nil {
		t.Fatal(err)
	}
	acc := sub.Snapshot.Clone()

	seq, err := reg.Apply([]gpm.Update{gpm.Insert(boss, am2), gpm.Insert(am2, c)})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("seq = %d", seq)
	}
	ev := <-sub.C
	if ev.Pattern != "ring" || ev.Seq != 1 {
		t.Fatalf("event = %+v", ev)
	}
	ev.Delta.Apply(acc)
	want, ok := reg.Result("ring")
	if !ok || !acc.Equal(want) {
		t.Fatalf("accumulated %v, live %v", acc, want)
	}
	if !want.Has(pa, am2) {
		t.Fatal("am2 should match after gaining a contact")
	}

	var st gpm.RegistryStats = reg.Stats()
	if st.Patterns != 1 || st.Seq != 1 || st.Commits != 1 || st.Applies != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Nodes != g.NumNodes() || st.Edges != g.NumEdges() {
		t.Fatalf("stats graph size = %+v", st)
	}

	// The engines read the registry's graph through gpm.GraphView — the
	// façade alias compiles against *Graph.
	var _ gpm.GraphView = g
}

// buildRingWorld returns the boss→AM→C graph and matching pattern used by
// the façade tests.
func buildRingWorld() (*gpm.Graph, *gpm.Pattern, []gpm.NodeID) {
	g := gpm.NewGraph()
	boss := g.AddNode(gpm.NewTuple("label", `"B"`))
	am := g.AddNode(gpm.NewTuple("label", `"AM"`))
	am2 := g.AddNode(gpm.NewTuple("label", `"AM"`))
	c := g.AddNode(gpm.NewTuple("label", `"C"`))
	g.AddEdge(boss, am)
	g.AddEdge(am, c)

	p := gpm.NewPattern()
	pb := p.AddNode(gpm.Label("B"))
	pa := p.AddNode(gpm.Label("AM"))
	pc := p.AddNode(gpm.Label("C"))
	p.AddEdge(pb, pa, 1) //nolint:errcheck // nodes exist by construction
	p.AddEdge(pa, pc, 1) //nolint:errcheck // nodes exist by construction
	return g, p, []gpm.NodeID{boss, am, am2, c}
}

// TestJournalFacade drives the journal through the public façade: a
// durable journal records commits, a disconnected subscriber resumes with
// FromSeq, Replay serves the raw ΔG tail, and RecoverRegistry rebuilds
// the registry after a restart.
func TestJournalFacade(t *testing.T) {
	dir := t.TempDir()
	j, err := gpm.OpenJournal(dir, gpm.JournalRing(128), gpm.JournalSnapshotEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	g, p, nodes := buildRingWorld()
	boss, _, am2, c := nodes[0], nodes[1], nodes[2], nodes[3]

	reg := gpm.NewRegistryWithJournal(g, j)
	if err := reg.Register("ring", p, gpm.KindSim); err != nil {
		t.Fatal(err)
	}
	base, _ := reg.Result("ring")
	acc := base.Clone()
	if _, err := reg.Apply([]gpm.Update{gpm.Insert(boss, am2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Apply([]gpm.Update{gpm.Insert(am2, c)}); err != nil {
		t.Fatal(err)
	}

	// Resume from seq 0: both commits' deltas are backfilled.
	sub, err := reg.Subscribe("ring", gpm.FromSeq(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ev := <-sub.C
		if ev.Seq != uint64(i+1) {
			t.Fatalf("backfilled event %d has seq %d", i, ev.Seq)
		}
		ev.Delta.Apply(acc)
	}
	want, _ := reg.Result("ring")
	if !acc.Equal(want) {
		t.Fatal("FromSeq backfill diverges from Result()")
	}
	sub.Cancel()

	// The raw ΔG tail is replayable, and stats expose retention.
	recs, err := reg.Replay(1)
	if err != nil || len(recs) != 1 {
		t.Fatalf("Replay(1) = %v, %v", recs, err)
	}
	var rc gpm.JournalCommit = recs[0]
	if rc.Seq != 2 || len(rc.Updates) != 1 {
		t.Fatalf("replayed commit %+v", rc)
	}
	st := reg.Stats()
	var js *gpm.JournalStats = st.Journal
	if js == nil || !js.Durable || js.Commits != 2 || js.HeadSeq != 2 {
		t.Fatalf("journal stats %+v", js)
	}

	// Restart: Close flushes, the owner closes the journal, and
	// RecoverRegistry rebuilds graph + pattern + seq from disk.
	reg.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := gpm.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	reg2, err := gpm.RecoverRegistry(j2)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if reg2.Seq() != 2 {
		t.Fatalf("recovered seq %d", reg2.Seq())
	}
	got, ok := reg2.Result("ring")
	if !ok || !got.Equal(want) {
		t.Fatalf("recovered result %v, want %v", got, want)
	}
	if _, err := reg2.Apply([]gpm.Update{gpm.Delete(boss, am2)}); err != nil {
		t.Fatal(err)
	}
	if reg2.Seq() != 3 {
		t.Fatalf("post-recovery seq %d", reg2.Seq())
	}
}
