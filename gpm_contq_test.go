package gpm_test

import (
	"testing"

	"gpm"
)

// TestRegistryFacade drives the continuous-query subsystem through the
// public façade: register a standing pattern, subscribe, commit updates,
// and check the snapshot-plus-deltas invariant.
func TestRegistryFacade(t *testing.T) {
	g := gpm.NewGraph()
	boss := g.AddNode(gpm.NewTuple("label", `"B"`))
	am := g.AddNode(gpm.NewTuple("label", `"AM"`))
	am2 := g.AddNode(gpm.NewTuple("label", `"AM"`))
	c := g.AddNode(gpm.NewTuple("label", `"C"`))
	g.AddEdge(boss, am)
	g.AddEdge(am, c)

	p := gpm.NewPattern()
	pb := p.AddNode(gpm.Label("B"))
	pa := p.AddNode(gpm.Label("AM"))
	pc := p.AddNode(gpm.Label("C"))
	if err := p.AddEdge(pb, pa, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEdge(pa, pc, 1); err != nil {
		t.Fatal(err)
	}

	reg := gpm.NewRegistry(g)
	defer reg.Close()
	if err := reg.Register("ring", p, gpm.KindAuto); err != nil {
		t.Fatal(err)
	}
	sub, err := reg.Subscribe("ring")
	if err != nil {
		t.Fatal(err)
	}
	acc := sub.Snapshot.Clone()

	seq, err := reg.Apply([]gpm.Update{gpm.Insert(boss, am2), gpm.Insert(am2, c)})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("seq = %d", seq)
	}
	ev := <-sub.C
	if ev.Pattern != "ring" || ev.Seq != 1 {
		t.Fatalf("event = %+v", ev)
	}
	ev.Delta.Apply(acc)
	want, ok := reg.Result("ring")
	if !ok || !acc.Equal(want) {
		t.Fatalf("accumulated %v, live %v", acc, want)
	}
	if !want.Has(pa, am2) {
		t.Fatal("am2 should match after gaining a contact")
	}

	var st gpm.RegistryStats = reg.Stats()
	if st.Patterns != 1 || st.Seq != 1 || st.Commits != 1 || st.Applies != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Nodes != g.NumNodes() || st.Edges != g.NumEdges() {
		t.Fatalf("stats graph size = %+v", st)
	}

	// The engines read the registry's graph through gpm.GraphView — the
	// façade alias compiles against *Graph.
	var _ gpm.GraphView = g
}
