// Package gpm is a from-scratch Go implementation of Fan, Wang & Wu,
// "Incremental Graph Pattern Matching" (SIGMOD 2011 / ACM TODS 38(3),
// 2013): graph pattern matching via bounded simulation, and incremental
// matching under edge updates for graph simulation, bounded simulation and
// subgraph isomorphism.
//
// The package is a façade over the internal implementation packages; it
// exposes everything a downstream user needs:
//
//   - Graph (data graphs with attribute tuples and edge updates) and
//     Pattern (b-patterns: predicates on nodes, hop bounds k or * on edges);
//   - Match: the cubic-time maximum bounded-simulation match (Section 3),
//     with pluggable distance oracles (BFS, all-pairs matrix, 2-hop,
//     landmark vectors);
//   - MatchSimulation: classic graph simulation (normal patterns);
//   - EnumerateIsomorphic: VF2-style subgraph isomorphism;
//   - IncSimEngine / IncBSimEngine: the incremental engines of Sections 5
//     and 6, maintaining matches under unit and batch edge updates in time
//     proportional to the affected area;
//   - LandmarkIndex: the landmark + distance-vector structure of Section 6
//     with incremental maintenance (InsLM / DelLM / IncLM).
//
// A minimal session:
//
//	g := gpm.NewGraph()
//	boss := g.AddNode(gpm.NewTuple("label", `"B"`))
//	am := g.AddNode(gpm.NewTuple("label", `"AM"`))
//	g.AddEdge(boss, am)
//
//	p := gpm.NewPattern()
//	b := p.AddNode(gpm.Label("B"))
//	a := p.AddNode(gpm.Label("AM"))
//	p.AddEdge(b, a, 1)
//
//	rel := gpm.Match(p, g)        // maximum bounded-simulation match
//
//	eng, _ := gpm.NewIncBSimEngine(p, g)
//	eng.Insert(am, boss)          // incremental repair, not recomputation
//	rel = eng.Result()
//
// Graphs, patterns and update batches serialize both as the line-oriented
// text formats (ReadGraph/Graph.Write, ParsePattern/Pattern.Write,
// ReadUpdates/WriteUpdates) and as JSON documents (encoding/json
// Marshal/Unmarshal on the same types) — the JSON forms are the v1 wire
// contract of cmd/gpserve. The typed HTTP SDK for that server lives in
// the sibling package gpm/client.
package gpm

import (
	"gpm/internal/contq"
	"gpm/internal/core"
	"gpm/internal/distance"
	"gpm/internal/gdn"
	"gpm/internal/graph"
	"gpm/internal/incbsim"
	"gpm/internal/incsim"
	"gpm/internal/iso"
	"gpm/internal/journal"
	"gpm/internal/landmark"
	"gpm/internal/obs"
	"gpm/internal/par"
	"gpm/internal/pattern"
	"gpm/internal/rel"
	"gpm/internal/resultgraph"
	"gpm/internal/simulation"
	"io"
)

// SetWorkers bounds the parallelism of the library's parallel hot paths —
// the distance-matrix and landmark-index builds, Match's candidate-set
// scans and the incremental engines' deletion-repair sweeps. Passing 0
// restores the default (GOMAXPROCS); 1 makes every hot path serial. The
// setting is process-wide.
func SetWorkers(n int) { par.SetDefaultWorkers(n) }

// Core data types, re-exported for downstream use.
type (
	// Graph is a directed data graph with attributed nodes.
	Graph = graph.Graph
	// Tuple is a node's attribute tuple.
	Tuple = graph.Tuple
	// Value is an attribute value (string, int or float).
	Value = graph.Value
	// NodeID identifies a data-graph node.
	NodeID = graph.NodeID
	// Update is a unit edge insertion or deletion.
	Update = graph.Update
	// Pattern is a b-pattern: predicates on nodes, bounds on edges.
	Pattern = pattern.Pattern
	// Predicate is a conjunction of attribute comparisons.
	Predicate = pattern.Predicate
	// Relation is a match relation S ⊆ Vp × V.
	Relation = rel.Relation
	// Pair is a single (pattern node, data node) match.
	Pair = rel.Pair
	// Delta is a match change-set ΔM: pairs removed from and added to a
	// relation by an update.
	Delta = rel.Delta
	// ResultGraph is the graph representation Gr of a match.
	ResultGraph = resultgraph.Graph
	// IncSimEngine incrementally maintains graph simulation (Section 5).
	IncSimEngine = incsim.Engine
	// IncBSimEngine incrementally maintains bounded simulation (Section 6).
	IncBSimEngine = incbsim.Engine
	// IncIsoEngine incrementally maintains subgraph isomorphism (Section 7).
	IncIsoEngine = iso.Engine
	// LandmarkIndex is the landmark + distance-vector oracle of Section 6.2.
	LandmarkIndex = landmark.Index
	// Embedding is one subgraph-isomorphism match.
	Embedding = iso.Embedding
	// DistanceOracle answers hop-distance queries for Match.
	DistanceOracle = distance.Oracle
	// Registry is the continuous-query registry: standing patterns over
	// one shared, continuously-updated graph, with match-delta
	// subscriptions (see NewRegistry).
	Registry = contq.Registry
	// Subscription is one subscriber's match-delta stream.
	Subscription = contq.Subscription
	// MatchEvent is one commit's ΔM for one standing pattern.
	MatchEvent = contq.Event
	// EngineKind selects the engine backing a registered pattern.
	EngineKind = contq.Kind
	// RegistryStats is a point-in-time registry snapshot: pattern count,
	// commit sequence, shared-graph size and the writer's coalescing
	// counters (see Registry.Stats).
	RegistryStats = contq.Stats
	// TimingStats is the commit-pipeline telemetry rollup carried on
	// RegistryStats.Timings: queue wait, per-stage commit latency
	// (validate/network/repair/journal/publish), coalescing effectiveness
	// and live subscription gauges, each latency as a HistSnapshot.
	TimingStats = contq.TimingStats
	// CommitTiming is one commit's stage-by-stage wall-time breakdown,
	// delivered synchronously to an observer installed with
	// WithCommitObserver — the hook behind gpserve's -slow-commit tracing.
	CommitTiming = contq.CommitTiming
	// HistSnapshot is a point-in-time latency histogram: count, sum, max,
	// estimated p50/p95/p99 quantiles and the cumulative buckets they were
	// read from.
	HistSnapshot = obs.HistSnapshot
	// NetworkStats reports the shared sub-pattern evaluation network
	// behind a registry's sim/bsim patterns: how many shared predicate /
	// edge / join nodes back the registered patterns, how many
	// registrations reused an existing engine, and how many per-pattern
	// repairs sharing plus relevance filtering saved
	// (RegistryStats.Network).
	NetworkStats = gdn.Stats
	// GraphView is the read-only face of a data graph that matching
	// engines read through; *Graph satisfies it.
	GraphView = graph.View
	// Journal is the registry's replayable commit log: every commit's net
	// ΔG plus pattern registrations, retained in a memory ring and
	// optionally on disk (see OpenJournal / NewMemoryJournal).
	Journal = journal.Journal
	// JournalStats reports a journal's retention and footprint: appended
	// commits, segments, bytes, oldest and head sequence.
	JournalStats = journal.Stats
	// JournalCommit is one replayed commit: its sequence number and net
	// update batch (see Registry.Replay).
	JournalCommit = journal.Commit
	// JournalOption configures OpenJournal / NewMemoryJournal.
	JournalOption = journal.Option
	// SubscribeOption configures Registry.Subscribe (see FromSeq).
	SubscribeOption = contq.SubscribeOption
	// RegistryOption configures NewRegistry / NewRegistryWithJournal (see
	// WithCommitObserver).
	RegistryOption = contq.Option
)

// The engine kinds a standing pattern can be registered under.
const (
	KindAuto = contq.KindAuto
	KindSim  = contq.KindSim
	KindBSim = contq.KindBSim
	KindIso  = contq.KindIso
)

// CmpOp is a predicate comparison operator.
type CmpOp = pattern.CmpOp

// The predicate comparison operators of the paper: <, <=, =, !=, >, >=.
const (
	OpLT = pattern.OpLT
	OpLE = pattern.OpLE
	OpEQ = pattern.OpEQ
	OpNE = pattern.OpNE
	OpGT = pattern.OpGT
	OpGE = pattern.OpGE
)

// String constructs a string attribute value.
func String(s string) Value { return graph.String(s) }

// Int constructs an integer attribute value.
func Int(i int64) Value { return graph.Int(i) }

// Float constructs a floating-point attribute value.
func Float(f float64) Value { return graph.Float(f) }

// Unbounded is the * edge bound: a pattern edge mapped to a nonempty path
// of any length.
const Unbounded = pattern.Unbounded

// NewGraph returns an empty data graph.
func NewGraph() *Graph { return graph.New() }

// ReadGraph parses a data graph in the text format (Graph.Write's
// inverse). For the JSON wire document, use encoding/json on *Graph.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// ParsePattern parses a pattern in the text format (Pattern.Write's
// inverse). For the JSON wire document, use encoding/json on *Pattern.
func ParsePattern(r io.Reader) (*Pattern, error) { return pattern.Parse(r) }

// ReadUpdates parses an edge-update batch in the text format (one
// "insert|delete from to" per line).
func ReadUpdates(r io.Reader) ([]Update, error) { return graph.ReadUpdates(r) }

// WriteUpdates serializes an edge-update batch in the text format.
func WriteUpdates(w io.Writer, ups []Update) error { return graph.WriteUpdates(w, ups) }

// NewTuple builds an attribute tuple from alternating key/value strings;
// values parse as int, float or (quoted) string.
func NewTuple(kv ...string) Tuple { return graph.NewTuple(kv...) }

// NewPattern returns an empty pattern.
func NewPattern() *Pattern { return pattern.New() }

// Label returns the predicate "label = l".
func Label(l string) Predicate { return pattern.Label(l) }

// Insert is shorthand for an edge-insertion update.
func Insert(u, v NodeID) Update { return graph.Insert(u, v) }

// Delete is shorthand for an edge-deletion update.
func Delete(u, v NodeID) Update { return graph.Delete(u, v) }

// Match computes the maximum bounded-simulation match Mksim(P, G)
// (Theorem 3.1) using on-demand BFS for distances. Use MatchWithOracle to
// supply a precomputed oracle.
func Match(p *Pattern, g *Graph) Relation { return core.MatchBFS(p, g) }

// MatchWithOracle computes Mksim(P, G) over the given distance oracle
// (e.g. NewDistanceMatrix, NewTwoHop or NewLandmarkIndex results).
func MatchWithOracle(p *Pattern, g *Graph, o DistanceOracle) Relation {
	return core.Match(p, g, core.WithOracle(o))
}

// MatchSimulation computes the maximum graph-simulation match Msim(P, G)
// for a normal pattern (every bound 1).
func MatchSimulation(p *Pattern, g *Graph) Relation { return simulation.Maximum(p, g) }

// MatchDualSimulation computes the maximum dual-simulation match for a
// normal pattern: simulation refined with the symmetric parent condition
// (Ma et al. 2011, the Section 2.3 remark).
func MatchDualSimulation(p *Pattern, g *Graph) Relation { return simulation.DualMaximum(p, g) }

// MatchColored computes the maximum bounded-simulation match of a pattern
// that may contain colored edges (AddColoredEdge): a colored pattern edge
// maps only to paths whose data edges all carry that relationship label —
// the typed-relationship extension of the paper's Section 2.2 remark.
func MatchColored(p *Pattern, g *Graph) Relation { return core.MatchColored(p, g) }

// EnumerateIsomorphic returns the subgraph-isomorphism embeddings of a
// normal pattern, up to limit (limit <= 0 for all).
func EnumerateIsomorphic(p *Pattern, g *Graph, limit int) []Embedding {
	return iso.Enumerate(p, g, limit)
}

// NewIncSimEngine builds the incremental simulation engine (IncMatch⁻,
// IncMatch⁺, IncMatch of Section 5) for a normal pattern. The engine owns
// g: apply updates through its methods.
func NewIncSimEngine(p *Pattern, g *Graph) (*IncSimEngine, error) { return incsim.New(p, g) }

// NewIncBSimEngine builds the incremental bounded-simulation engine
// (IncBMatch of Section 6) for a b-pattern. The engine owns g.
func NewIncBSimEngine(p *Pattern, g *Graph) (*IncBSimEngine, error) { return incbsim.New(p, g) }

// NewIncBSimEngineWithLandmarks builds the incremental bounded-simulation
// engine backed by a maintained landmark index built over g.
func NewIncBSimEngineWithLandmarks(p *Pattern, g *Graph) (*IncBSimEngine, error) {
	return incbsim.New(p, g, incbsim.WithLandmarkIndex(landmark.New(g)))
}

// NewRegistry builds a continuous-query registry over g, taking ownership
// of it: register standing patterns with Register, commit edge updates
// with Apply, and receive per-pattern match deltas through Subscribe.
// Every engine reads the ONE canonical graph through a private update
// overlay (per-pattern memory is O(pattern-state), not a graph replica),
// and the single writer coalesces concurrently queued Apply batches into
// one commit with edge-level insert/delete cancellation; readers and
// subscribers never block behind it. cmd/gpserve exposes the same
// subsystem over HTTP.
func NewRegistry(g *Graph, options ...RegistryOption) *Registry {
	return contq.New(g, options...)
}

// NewRegistryWithJournal builds a continuous-query registry whose commit
// stream is recorded in j: every commit's net ΔG and every pattern
// (un)registration is appended, so disconnected subscribers resume with
// Subscribe(id, FromSeq(n)), raw ΔG tails replay with Registry.Replay,
// and — for durable journals — a crashed process recovers its full state
// with RecoverRegistry. j must be new or freshly reset; Registry.Close
// flushes and fsyncs it but leaves closing it to the caller.
func NewRegistryWithJournal(g *Graph, j *Journal, options ...RegistryOption) *Registry {
	return contq.New(g, append([]RegistryOption{contq.WithJournal(j)}, options...)...)
}

// WithCommitObserver installs a per-commit timing hook on a registry: fn
// receives every commit's CommitTiming (stage wall times, drain size,
// effective updates) synchronously after publish. Keep fn cheap — it runs
// on the writer goroutine. gpserve's -slow-commit tracing is this hook.
func WithCommitObserver(fn func(CommitTiming)) RegistryOption {
	return contq.WithCommitObserver(fn)
}

// RecoverRegistry rebuilds a registry from a durable journal: the latest
// snapshot's graph and standing patterns are loaded, the record tail is
// replayed through the incremental engines, and the journal stays
// attached for new commits. The recovered registry serves results at the
// journal's head sequence.
func RecoverRegistry(j *Journal) (*Registry, error) { return contq.Recover(j) }

// OpenJournal opens (or creates) a durable commit journal in dir:
// length-prefixed checksummed records in rotating segment files, periodic
// full-state snapshots for bounded recovery and log compaction, and a
// memory ring for hot replay. A torn tail record left by a crash is
// truncated away on open.
func OpenJournal(dir string, options ...JournalOption) (*Journal, error) {
	return journal.Open(dir, options...)
}

// NewMemoryJournal returns a memory-only journal: subscribers can resume
// within the retained ring (JournalRing), but nothing survives the
// process.
func NewMemoryJournal(options ...JournalOption) *Journal { return journal.New(options...) }

// JournalRing bounds how many recent commits a journal keeps in memory
// for hot replay (default 4096).
func JournalRing(n int) JournalOption { return journal.WithRing(n) }

// JournalSnapshotEvery makes a durable journal checkpoint (and compact)
// every n commits (default 1024; 0 disables automatic snapshots).
func JournalSnapshotEvery(n uint64) JournalOption { return journal.WithSnapshotEvery(n) }

// FromSeq makes Registry.Subscribe resume from commit sequence n: the
// subscription starts with no snapshot and its events begin at n+1, the
// missed deltas backfilled by replaying the journal through a fresh
// engine. Fails if the journal no longer retains the range — fall back to
// a plain Subscribe.
func FromSeq(n uint64) SubscribeOption { return contq.FromSeq(n) }

// NewIncIsoEngine builds the incremental subgraph-isomorphism engine
// (IncIsoMat of Section 7 — unbounded by Theorem 7.1, exponential worst
// case) for a normal pattern.
func NewIncIsoEngine(p *Pattern, g *Graph) *IncIsoEngine { return iso.NewEngine(p, g) }

// NewLandmarkIndex builds the landmark + distance-vector oracle of
// Section 6.2 over g (a greedy vertex cover plus two BFS runs per
// landmark). The index doubles as a DistanceOracle.
func NewLandmarkIndex(g *Graph) *LandmarkIndex { return landmark.New(g) }

// NewDistanceMatrix builds the all-pairs distance matrix oracle (O(|V|²)
// space).
func NewDistanceMatrix(g *Graph) DistanceOracle { return distance.NewMatrix(g) }

// NewTwoHop builds the 2-hop cover labeling oracle.
func NewTwoHop(g *Graph) DistanceOracle { return distance.NewTwoHop(g) }

// NewWeightedMatrix builds the Floyd–Warshall all-pairs oracle over edge
// weights (the weighted-graph extension remarked after Theorem 3.1);
// pattern bounds are then interpreted over truncated weighted distances.
func NewWeightedMatrix(g *Graph, weight func(u, v NodeID) float64) DistanceOracle {
	return distance.NewWeightedMatrix(g, weight)
}

// SimulationResultGraph builds the result graph Gr of a simulation match.
func SimulationResultGraph(p *Pattern, g *Graph, r Relation) *ResultGraph {
	return resultgraph.FromSimulation(p, g, r)
}

// BoundedResultGraph builds the result graph Gr of a bounded-simulation
// match (edges are projections of pattern edges onto bounded paths).
func BoundedResultGraph(p *Pattern, g *Graph, r Relation) *ResultGraph {
	return resultgraph.FromBounded(p, g, r, nil)
}
