// Command gpmatch matches a pattern file against a graph file.
//
// Modes: bounded simulation (default), graph simulation, or subgraph
// isomorphism. With -updates it additionally replays an update stream
// through the corresponding incremental engine and prints ΔM per batch.
//
// Usage:
//
//	gpmatch -graph g.graph -pattern p.pattern
//	gpmatch -graph g.graph -pattern p.pattern -mode sim
//	gpmatch -graph g.graph -pattern p.pattern -oracle matrix
//	gpmatch -graph g.graph -pattern p.pattern -updates ups.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gpm"
	"gpm/internal/graph"
	"gpm/internal/par"
	"gpm/internal/pattern"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpmatch: ")
	var (
		gfile   = flag.String("graph", "", "data graph file")
		pfile   = flag.String("pattern", "", "pattern file")
		mode    = flag.String("mode", "bsim", "matching mode: bsim | sim | iso")
		oracle  = flag.String("oracle", "bfs", "distance oracle for bsim: bfs | matrix | 2hop | landmark")
		upsFile = flag.String("updates", "", "optional update stream to replay incrementally")
		limit   = flag.Int("limit", 0, "iso: stop after this many embeddings (0 = all)")
		quiet   = flag.Bool("quiet", false, "print only counts and timings")
		workers = flag.Int("workers", 0, "worker goroutines for parallel hot paths (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()
	par.SetDefaultWorkers(*workers)
	if *gfile == "" || *pfile == "" {
		log.Fatal("-graph and -pattern are required")
	}

	g := readGraph(*gfile)
	p := readPattern(*pfile)
	fmt.Printf("graph: %d nodes, %d edges; pattern: %d nodes, %d edges\n",
		g.NumNodes(), g.NumEdges(), p.NumNodes(), p.NumEdges())

	switch *mode {
	case "iso":
		start := time.Now()
		ems := gpm.EnumerateIsomorphic(p.Normalized(), g, *limit)
		fmt.Printf("subgraph isomorphism: %d embeddings in %v\n", len(ems), time.Since(start))
		if !*quiet {
			for i, em := range ems {
				if i >= 20 {
					fmt.Printf("  … %d more\n", len(ems)-20)
					break
				}
				fmt.Printf("  %v\n", em)
			}
		}
		return
	case "sim":
		start := time.Now()
		rel := gpm.MatchSimulation(p.Normalized(), g)
		fmt.Printf("graph simulation: %d pairs in %v\n", rel.Size(), time.Since(start))
		printRelation(rel, *quiet)
	case "bsim":
		var o gpm.DistanceOracle
		buildStart := time.Now()
		switch *oracle {
		case "bfs":
			o = nil
		case "matrix":
			o = gpm.NewDistanceMatrix(g)
		case "2hop":
			o = gpm.NewTwoHop(g)
		case "landmark":
			o = gpm.NewLandmarkIndex(g)
		default:
			log.Fatalf("unknown -oracle %q", *oracle)
		}
		if o != nil {
			fmt.Printf("oracle build (%s): %v\n", *oracle, time.Since(buildStart))
		}
		start := time.Now()
		var rel gpm.Relation
		if o == nil {
			rel = gpm.Match(p, g)
		} else {
			rel = gpm.MatchWithOracle(p, g, o)
		}
		fmt.Printf("bounded simulation: %d pairs in %v\n", rel.Size(), time.Since(start))
		printRelation(rel, *quiet)
	default:
		log.Fatalf("unknown -mode %q", *mode)
	}

	if *upsFile != "" {
		replay(p, g, *mode, *upsFile)
	}
}

func replay(p *pattern.Pattern, g *graph.Graph, mode, upsFile string) {
	f, err := os.Open(upsFile)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	ups, err := graph.ReadUpdates(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplaying %d updates incrementally…\n", len(ups))
	switch mode {
	case "sim":
		eng, err := gpm.NewIncSimEngine(p.Normalized(), g)
		if err != nil {
			log.Fatal(err)
		}
		before := eng.Result()
		start := time.Now()
		res := eng.Batch(ups)
		elapsed := time.Since(start)
		removed, added := before.Diff(eng.Result())
		fmt.Printf("IncMatch: +%d −%d pairs in %v (reduced %d→%d updates)\n",
			len(added), len(removed), elapsed, res.Original, res.Relevant)
	case "bsim":
		eng, err := gpm.NewIncBSimEngine(p, g)
		if err != nil {
			log.Fatal(err)
		}
		before := eng.Result()
		start := time.Now()
		eng.Batch(ups)
		elapsed := time.Since(start)
		removed, added := before.Diff(eng.Result())
		fmt.Printf("IncBMatch: +%d −%d pairs in %v; stats %+v\n",
			len(added), len(removed), elapsed, eng.Stats())
	case "iso":
		eng := gpm.NewIncIsoEngine(p.Normalized(), g)
		before := eng.Count()
		start := time.Now()
		eng.Apply(ups)
		fmt.Printf("IncIsoMat: %d → %d embeddings in %v\n", before, eng.Count(), time.Since(start))
	}
}

func printRelation(rel gpm.Relation, quiet bool) {
	if quiet || rel.Empty() {
		return
	}
	for u, set := range rel {
		ids := set.Sorted()
		fmt.Printf("  pattern node %d → %d nodes:", u, len(ids))
		for i, v := range ids {
			if i >= 15 {
				fmt.Printf(" … %d more", len(ids)-15)
				break
			}
			fmt.Printf(" %d", v)
		}
		fmt.Println()
	}
}

func readGraph(path string) *graph.Graph {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	g, err := graph.Read(f)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func readPattern(path string) *pattern.Pattern {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	p, err := pattern.Parse(f)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
