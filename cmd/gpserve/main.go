// Command gpserve serves continuous graph-pattern queries over HTTP: load
// a data graph, register standing patterns, POST edge-update batches, and
// stream per-pattern match deltas to any number of subscribers via
// Server-Sent Events. The wire API is versioned under /v1 (see
// internal/serve for the endpoint table); the original unversioned paths
// remain as deprecated aliases. Programs should use the typed SDK in
// gpm/client instead of raw HTTP.
//
// Usage:
//
//	gpserve -addr :8080
//	gpserve -addr :8080 -graph g.graph
//	gpserve -addr :8080 -journal /var/lib/gpserve
//	gpserve -addr :8080 -log-format json -slow-commit 250ms -pprof localhost:6060
//	gpserve -addr :8081 -follow http://leader:8080 -follow-lag-max 256
//
// A session with curl (text bodies; send Content-Type: application/json
// to use the JSON wire documents instead):
//
//	curl -X POST --data-binary @g.graph localhost:8080/v1/graph
//	curl -X PUT --data-binary @p.pattern 'localhost:8080/v1/patterns/watch?kind=auto'
//	curl -N localhost:8080/v1/patterns/watch/stream &
//	curl -X POST --data-binary $'insert 3 7\ndelete 7 3\n' localhost:8080/v1/updates
//	curl localhost:8080/v1/stats
//	curl localhost:8080/v1/metricz
//	curl localhost:8080/v1/readyz
//
// Failures come back as one JSON envelope {"code", "message", "seq"?}
// with a stable machine-readable code. GET /v1/healthz (liveness) and
// GET /v1/readyz (readiness: registry open, journal accepting appends)
// serve container orchestration and the future follower mode.
//
// Observability: logs are structured (log/slog), one line per request with
// route, status, bytes, duration and (when present) the request's trace
// ID, plus lifecycle events (startup, recovery, shutdown); -log-format
// selects text or JSON. Commits slower than -slow-commit log a warning
// carrying the full per-stage breakdown (validate, network, repair,
// journal, publish — plus the slowest pattern) and, when the commit was
// sampled, its trace ID and span tree. GET /v1/metricz exposes the same
// telemetry as Prometheus text for scraping, GET /v1/tracez serves the
// recent commit traces (-trace-sample picks the sampling policy: off,
// always, ratio:F, slow:DUR), and -pprof ADDR serves net/http/pprof on a
// separate listener, kept off the public API surface.
//
// With -follow URL gpserve runs as a read-only replica of the leader at
// URL: it bootstraps from the leader's snapshot, tails its raw ΔG commit
// stream, serves every read endpoint locally at the leader's own commit
// sequence numbers, and answers writes with 403 {"code":"read_only",
// "leader":URL}. GET /v1/readyz reports 503 while bootstrapping,
// disconnected from the leader, or lagging by more than -follow-lag-max
// commits — put followers behind a load balancer keyed on readiness.
// -follow is incompatible with -journal and -graph: the leader owns
// durability and the world.
//
// With -journal DIR every commit (and pattern registration) is appended
// to a durable, checksummed log, and on startup gpserve recovers the
// graph, standing patterns and commit sequence from the latest snapshot
// plus the log tail — dropped SSE clients resume with Last-Event-ID even
// across the restart. Without -journal an in-memory ring still serves
// resumes, but nothing survives the process.
//
// gpserve shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, the registry closes (which ends every SSE stream, lets any
// in-flight commit drain, and fsyncs the journal), remaining connections
// get a bounded grace period, and the journal is closed last — after the
// HTTP server has drained — so no handler can race a torn tail record.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpm/internal/contq"
	"gpm/internal/follow"
	"gpm/internal/graph"
	"gpm/internal/journal"
	"gpm/internal/obs/trace"
	"gpm/internal/par"
	"gpm/internal/serve"
)

// ms renders a duration as fractional milliseconds for log fields — the
// same unit the metrics histograms use.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		gfile     = flag.String("graph", "", "optional graph file to load at startup")
		workers   = flag.Int("workers", 0, "fan-out worker goroutines per commit (0 = GOMAXPROCS)")
		grace     = flag.Duration("grace", 10*time.Second, "graceful-shutdown grace period")
		jdir      = flag.String("journal", "", "directory for the durable commit journal (empty = in-memory replay ring only)")
		jsnap     = flag.Uint64("journal-snapshot-every", 1024, "write a recovery snapshot (and compact the journal) every N commits")
		jring     = flag.Int("journal-ring", 4096, "recent commits kept in memory for hot stream resumes")
		jseg      = flag.Int64("journal-segment-bytes", 4<<20, "journal segment rotation threshold in bytes")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		slow      = flag.Duration("slow-commit", 500*time.Millisecond, "log a warning with the per-stage breakdown for commits slower than this (0 disables)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (separate listener; empty disables)")
		sample    = flag.String("trace-sample", "always", "commit tracing: off, always, ratio:F (deterministic by trace ID, 0..1), or slow:DUR (retain traces with a span at least DUR)")

		followURL       = flag.String("follow", "", "run as a read-only follower replicating the leader at this base URL")
		followLagMax    = flag.Uint64("follow-lag-max", 1024, "report not-ready when trailing the leader by more than this many commits (0 = lag never gates readiness)")
		followReconcile = flag.Duration("follow-reconcile", 2*time.Second, "pattern-reconciliation poll interval against the leader")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		slog.Error("unknown -log-format (want text or json)", "got", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	par.SetDefaultWorkers(*workers)

	tcfg, err := trace.ParseSampling(*sample)
	if err != nil {
		fatal("bad -trace-sample", "got", *sample, "error", err)
	}
	tracer := trace.New(tcfg)

	regOpts := []contq.Option{contq.WithWorkers(*workers), contq.WithTracer(tracer)}
	if *slow > 0 {
		threshold := *slow
		regOpts = append(regOpts, contq.WithCommitObserver(func(ct contq.CommitTiming) {
			if ct.Total < threshold {
				return
			}
			args := []any{
				"seq", ct.Seq,
				"total_ms", ms(ct.Total),
				"validate_ms", ms(ct.Validate),
				"network_ms", ms(ct.Network),
				"repair_ms", ms(ct.Repair),
				"journal_ms", ms(ct.Journal),
				"publish_ms", ms(ct.Publish),
				"batches", ct.Batches,
				"updates", ct.Updates,
				"patterns", ct.Patterns,
				"slowest_pattern", ct.SlowestPattern,
				"slowest_repair_ms", ms(ct.SlowestRepair),
			}
			// A sampled commit carries its traceparent: attach the trace ID
			// (the /v1/tracez lookup key) and the full span tree, so one log
			// line shows where inside the commit the time went.
			if sc, ok := trace.Parse(ct.Trace); ok {
				args = append(args, "trace_id", sc.TraceID.String())
				if snap, ok := tracer.Lookup(sc.TraceID.String()); ok {
					args = append(args, "spans", snap.Spans)
				}
			}
			logger.Warn("slow commit", args...)
		}))
	}

	var srv *serve.Server
	var jnl *journal.Journal
	var fl *follow.Follower
	recoverStart := time.Now()
	if *followURL != "" {
		if *jdir != "" {
			fatal("-follow is incompatible with -journal (followers replicate the leader's journal)")
		}
		if *gfile != "" {
			fatal("-follow is incompatible with -graph (followers bootstrap from the leader's snapshot)")
		}
		srv = serve.NewReadOnly(*followURL, regOpts...)
		fl = follow.New(srv, follow.Config{
			Leader: *followURL,
			MaxLag: *followLagMax,
			// Rebootstrapped registries must keep the worker/tracer/observer
			// setup of the placeholder one, or a resync would silently shed
			// the follower's observability.
			RegistryOptions: regOpts,
			Reconcile:       *followReconcile,
			Logger:          logger,
		})
		logger.Info("follower mode", "leader", *followURL, "lag_max", *followLagMax)
	} else if *jdir != "" {
		var err error
		jnl, err = journal.Open(*jdir,
			journal.WithSnapshotEvery(*jsnap),
			journal.WithRing(*jring),
			journal.WithSegmentBytes(*jseg))
		if err != nil {
			fatal("opening journal", "dir", *jdir, "error", err)
		}
		srv, err = serve.NewWithJournal(jnl, regOpts...)
		if err != nil {
			fatal("recovering from journal", "dir", *jdir, "error", err)
		}
	} else {
		srv = serve.New(regOpts...)
	}
	if fl == nil {
		nodes, edges, seq := srv.Registry().GraphInfo()
		npats := len(srv.Registry().Patterns())
		recovered := seq > 0 || nodes > 0 || npats > 0
		if jnl != nil && recovered {
			js := jnl.Stats()
			logger.Info("recovered",
				"dir", *jdir,
				"seq", seq,
				"patterns", npats,
				"nodes", nodes,
				"edges", edges,
				"segments", js.Segments,
				"journal_bytes", js.Bytes,
				"snapshot_seq", js.SnapshotSeq,
				"elapsed_ms", ms(time.Since(recoverStart)),
			)
		}

		if *gfile != "" {
			if jnl != nil && recovered {
				// The journal already holds a world — even one still at seq 0
				// (a POSTed graph or registered patterns with no commits yet);
				// -graph would wipe it.
				logger.Warn("journal has state; ignoring -graph (POST /graph to replace)",
					"seq", seq, "nodes", nodes, "patterns", npats, "graph", *gfile)
			} else {
				f, err := os.Open(*gfile)
				if err != nil {
					fatal("opening graph file", "file", *gfile, "error", err)
				}
				g, err := graph.Read(f)
				f.Close()
				if err != nil {
					fatal("parsing graph file", "file", *gfile, "error", err)
				}
				if err := srv.LoadGraph(g); err != nil {
					fatal("loading graph", "file", *gfile, "error", err)
				}
				logger.Info("graph loaded", "file", *gfile, "nodes", g.NumNodes(), "edges", g.NumEdges())
			}
		}
	}

	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener: profiling endpoints
		// stay reachable when the main server is saturated and are never
		// exposed on the public address.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				logger.Error("pprof listener failed", "addr", *pprofAddr, "error", err)
			}
		}()
		logger.Info("pprof listening", "addr", *pprofAddr)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           serve.AccessLog(srv, logger),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if fl != nil {
		// The replication loop runs until the signal context ends; its exit
		// needs no join — closing the registry below ends anything in flight.
		go fl.Run(ctx) //nolint:errcheck // only ever returns ctx.Err()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "journal", *jdir, "log_format", *logFormat)

	select {
	case err := <-errCh:
		fatal("listener failed", "error", err) // before any signal
	case <-ctx.Done():
	}
	stop() // a second signal kills the process immediately
	logger.Info("shutting down", "grace", grace.String())

	// Close the registry first: it waits for any in-flight commit, fsyncs
	// the journal, then cancels every subscription, which unblocks the SSE
	// handlers so Shutdown's connection drain below can actually finish.
	srv.Close()

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("forced shutdown", "error", err)
		httpSrv.Close() //nolint:errcheck // already exiting
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("server error", "error", err)
	}
	// The journal closes last — after the HTTP server has drained — so no
	// straggling handler can write past the final fsync (no torn tail).
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			logger.Warn("closing journal", "error", err)
		}
		logger.Info("journal closed", "seq", jnl.HeadSeq())
	}
	logger.Info("bye")
}
