// Command gpserve serves continuous graph-pattern queries over HTTP: load
// a data graph, register standing patterns, POST edge-update batches, and
// stream per-pattern match deltas to any number of subscribers via
// Server-Sent Events. See internal/serve for the endpoint table.
//
// Usage:
//
//	gpserve -addr :8080
//	gpserve -addr :8080 -graph g.graph
//
// A session with curl:
//
//	curl -X POST --data-binary @g.graph localhost:8080/graph
//	curl -X PUT --data-binary @p.pattern 'localhost:8080/patterns/watch?kind=auto'
//	curl -N localhost:8080/patterns/watch/stream &
//	curl -X POST --data-binary $'insert 3 7\ndelete 7 3\n' localhost:8080/updates
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"gpm/internal/contq"
	"gpm/internal/graph"
	"gpm/internal/par"
	"gpm/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpserve: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		gfile   = flag.String("graph", "", "optional graph file to load at startup")
		workers = flag.Int("workers", 0, "fan-out worker goroutines per commit (0 = GOMAXPROCS)")
	)
	flag.Parse()

	srv := serve.New(contq.WithWorkers(*workers))
	par.SetDefaultWorkers(*workers)
	if *gfile != "" {
		f, err := os.Open(*gfile)
		if err != nil {
			log.Fatal(err)
		}
		g, err := graph.Read(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", *gfile, err)
		}
		srv.LoadGraph(g)
		log.Printf("loaded %s: %d nodes, %d edges", *gfile, g.NumNodes(), g.NumEdges())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("listening on %s", *addr)
	log.Fatal(httpSrv.ListenAndServe())
}
