// Command gpserve serves continuous graph-pattern queries over HTTP: load
// a data graph, register standing patterns, POST edge-update batches, and
// stream per-pattern match deltas to any number of subscribers via
// Server-Sent Events. See internal/serve for the endpoint table.
//
// Usage:
//
//	gpserve -addr :8080
//	gpserve -addr :8080 -graph g.graph
//
// A session with curl:
//
//	curl -X POST --data-binary @g.graph localhost:8080/graph
//	curl -X PUT --data-binary @p.pattern 'localhost:8080/patterns/watch?kind=auto'
//	curl -N localhost:8080/patterns/watch/stream &
//	curl -X POST --data-binary $'insert 3 7\ndelete 7 3\n' localhost:8080/updates
//	curl localhost:8080/stats
//
// gpserve shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, the registry closes (which ends every SSE stream and lets
// any in-flight commit drain), and remaining connections get a bounded
// grace period before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpm/internal/contq"
	"gpm/internal/graph"
	"gpm/internal/par"
	"gpm/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpserve: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		gfile   = flag.String("graph", "", "optional graph file to load at startup")
		workers = flag.Int("workers", 0, "fan-out worker goroutines per commit (0 = GOMAXPROCS)")
		grace   = flag.Duration("grace", 10*time.Second, "graceful-shutdown grace period")
	)
	flag.Parse()

	srv := serve.New(contq.WithWorkers(*workers))
	par.SetDefaultWorkers(*workers)
	if *gfile != "" {
		f, err := os.Open(*gfile)
		if err != nil {
			log.Fatal(err)
		}
		g, err := graph.Read(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", *gfile, err)
		}
		srv.LoadGraph(g)
		log.Printf("loaded %s: %d nodes, %d edges", *gfile, g.NumNodes(), g.NumEdges())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err) // listener failed before any signal
	case <-ctx.Done():
	}
	stop() // a second signal kills the process immediately
	log.Printf("shutting down (grace %s)", *grace)

	// Close the registry first: it waits for any in-flight commit, then
	// cancels every subscription, which unblocks the SSE handlers so
	// Shutdown's connection drain below can actually finish.
	srv.Close()

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("forced shutdown: %v", err)
		httpSrv.Close() //nolint:errcheck // already exiting
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("bye")
}
