// Command gpserve serves continuous graph-pattern queries over HTTP: load
// a data graph, register standing patterns, POST edge-update batches, and
// stream per-pattern match deltas to any number of subscribers via
// Server-Sent Events. The wire API is versioned under /v1 (see
// internal/serve for the endpoint table); the original unversioned paths
// remain as deprecated aliases. Programs should use the typed SDK in
// gpm/client instead of raw HTTP.
//
// Usage:
//
//	gpserve -addr :8080
//	gpserve -addr :8080 -graph g.graph
//	gpserve -addr :8080 -journal /var/lib/gpserve
//
// A session with curl (text bodies; send Content-Type: application/json
// to use the JSON wire documents instead):
//
//	curl -X POST --data-binary @g.graph localhost:8080/v1/graph
//	curl -X PUT --data-binary @p.pattern 'localhost:8080/v1/patterns/watch?kind=auto'
//	curl -N localhost:8080/v1/patterns/watch/stream &
//	curl -X POST --data-binary $'insert 3 7\ndelete 7 3\n' localhost:8080/v1/updates
//	curl localhost:8080/v1/stats
//	curl localhost:8080/v1/readyz
//
// Failures come back as one JSON envelope {"code", "message", "seq"?}
// with a stable machine-readable code. GET /v1/healthz (liveness) and
// GET /v1/readyz (readiness: registry open, journal accepting appends)
// serve container orchestration and the future follower mode.
//
// With -journal DIR every commit (and pattern registration) is appended
// to a durable, checksummed log, and on startup gpserve recovers the
// graph, standing patterns and commit sequence from the latest snapshot
// plus the log tail — dropped SSE clients resume with Last-Event-ID even
// across the restart. Without -journal an in-memory ring still serves
// resumes, but nothing survives the process.
//
// gpserve shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, the registry closes (which ends every SSE stream, lets any
// in-flight commit drain, and fsyncs the journal), remaining connections
// get a bounded grace period, and the journal is closed last — after the
// HTTP server has drained — so no handler can race a torn tail record.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpm/internal/contq"
	"gpm/internal/graph"
	"gpm/internal/journal"
	"gpm/internal/par"
	"gpm/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpserve: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		gfile   = flag.String("graph", "", "optional graph file to load at startup")
		workers = flag.Int("workers", 0, "fan-out worker goroutines per commit (0 = GOMAXPROCS)")
		grace   = flag.Duration("grace", 10*time.Second, "graceful-shutdown grace period")
		jdir    = flag.String("journal", "", "directory for the durable commit journal (empty = in-memory replay ring only)")
		jsnap   = flag.Uint64("journal-snapshot-every", 1024, "write a recovery snapshot (and compact the journal) every N commits")
		jring   = flag.Int("journal-ring", 4096, "recent commits kept in memory for hot stream resumes")
		jseg    = flag.Int64("journal-segment-bytes", 4<<20, "journal segment rotation threshold in bytes")
	)
	flag.Parse()

	par.SetDefaultWorkers(*workers)

	var srv *serve.Server
	var jnl *journal.Journal
	if *jdir != "" {
		var err error
		jnl, err = journal.Open(*jdir,
			journal.WithSnapshotEvery(*jsnap),
			journal.WithRing(*jring),
			journal.WithSegmentBytes(*jseg))
		if err != nil {
			log.Fatalf("opening journal %s: %v", *jdir, err)
		}
		srv, err = serve.NewWithJournal(jnl, contq.WithWorkers(*workers))
		if err != nil {
			log.Fatalf("recovering from journal %s: %v", *jdir, err)
		}
	} else {
		srv = serve.New(contq.WithWorkers(*workers))
	}
	nodes, edges, seq := srv.Registry().GraphInfo()
	npats := len(srv.Registry().Patterns())
	recovered := seq > 0 || nodes > 0 || npats > 0
	if jnl != nil && recovered {
		log.Printf("recovered from %s: %d nodes, %d edges, %d patterns, seq %d",
			*jdir, nodes, edges, npats, seq)
	}

	if *gfile != "" {
		if jnl != nil && recovered {
			// The journal already holds a world — even one still at seq 0
			// (a POSTed graph or registered patterns with no commits yet);
			// -graph would wipe it.
			log.Printf("journal has state (seq %d, %d nodes, %d patterns); ignoring -graph %s (POST /graph to replace)",
				seq, nodes, npats, *gfile)
		} else {
			f, err := os.Open(*gfile)
			if err != nil {
				log.Fatal(err)
			}
			g, err := graph.Read(f)
			f.Close()
			if err != nil {
				log.Fatalf("%s: %v", *gfile, err)
			}
			if err := srv.LoadGraph(g); err != nil {
				log.Fatalf("loading %s: %v", *gfile, err)
			}
			log.Printf("loaded %s: %d nodes, %d edges", *gfile, g.NumNodes(), g.NumEdges())
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err) // listener failed before any signal
	case <-ctx.Done():
	}
	stop() // a second signal kills the process immediately
	log.Printf("shutting down (grace %s)", *grace)

	// Close the registry first: it waits for any in-flight commit, fsyncs
	// the journal, then cancels every subscription, which unblocks the SSE
	// handlers so Shutdown's connection drain below can actually finish.
	srv.Close()

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("forced shutdown: %v", err)
		httpSrv.Close() //nolint:errcheck // already exiting
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// The journal closes last — after the HTTP server has drained — so no
	// straggling handler can write past the final fsync (no torn tail).
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			log.Printf("closing journal: %v", err)
		}
		log.Printf("journal closed at seq %d", jnl.HeadSeq())
	}
	log.Printf("bye")
}
