// Command gpbench regenerates the paper's experimental tables and figures
// (Section 8). Each figure has a driver; -fig selects one, -all runs the
// whole suite. -scale trades fidelity for speed: 1.0 reproduces the
// paper's dataset sizes, the default keeps every run laptop-quick.
// -json switches the output to one machine-readable JSON object per run,
// so the bench trajectory can be tracked across revisions.
//
// Usage:
//
//	gpbench -all
//	gpbench -fig 18a -scale 0.1
//	gpbench -fig 20b -seed 7
//	gpbench -all -json | jq .elapsed_ms
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"gpm/internal/contq"
	"gpm/internal/exp"
	"gpm/internal/obs"
	"gpm/internal/par"
)

var drivers = map[string]func(exp.Config) exp.Table{
	"16a": exp.Fig16a, "16b": exp.Fig16b, "16c": exp.Fig16c,
	"17a": exp.Fig17a, "17b": exp.Fig17b, "17c": exp.Fig17c, "17d": exp.Fig17d,
	"18a": exp.Fig18a, "18b": exp.Fig18b, "18c": exp.Fig18c, "18d": exp.Fig18d,
	"19a": exp.Fig19a, "19b": exp.Fig19b, "19c": exp.Fig19c, "19d": exp.Fig19d,
	"20a": exp.Fig20a, "20b": exp.Fig20b, "20c": exp.Fig20c, "20d": exp.Fig20d,
	"20e": exp.Fig20e, "20f": exp.Fig20f,
	"net1":   exp.FigNet1,
	"trace1": exp.FigTrace1,
	"table1": exp.Table1Witnesses,
}

// jsonRun is the machine-readable form of one figure run (-json): the
// table verbatim plus the run's identity and wall-clock cost.
type jsonRun struct {
	Figure    string     `json:"figure"`
	Title     string     `json:"title"`
	Scale     float64    `json:"scale"`
	Seed      int64      `json:"seed"`
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
	// CommitStageMS breaks the run's registry commit time down by pipeline
	// stage (validate, network, repair, journal, publish, total),
	// cumulative milliseconds over the run — present only when the figure
	// drove the contq registry (batch-engine figures commit nothing).
	CommitStageMS map[string]float64 `json:"commit_stage_ms,omitempty"`
}

// stageDelta subtracts per-stage sums captured before a run from the sums
// after it, dropping stages that saw no time.
func stageDelta(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(after))
	for k, v := range after {
		if d := v - before[k]; d > 0 {
			out[k] = d
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpbench: ")
	var (
		fig      = flag.String("fig", "", "figure to run: 16a…20f or table1 (comma-separated for several)")
		all      = flag.Bool("all", false, "run the whole suite")
		scale    = flag.Float64("scale", 0, "dataset scale factor (default: quick scale)")
		seed     = flag.Int64("seed", 1, "random seed")
		skipSlow = flag.Bool("skip-slow", false, "skip the intentionally unscalable baselines")
		workers  = flag.Int("workers", 0, "worker goroutines for parallel hot paths (0 = GOMAXPROCS, 1 = serial)")
		jsonOut  = flag.Bool("json", false, "emit one JSON object per run instead of text tables")
	)
	flag.Parse()
	par.SetDefaultWorkers(*workers)

	cfg := exp.Default()
	cfg.Seed = *seed
	if *scale > 0 {
		cfg.Scale = *scale
	}
	cfg.SkipSlowBaselines = *skipSlow

	var names []string
	switch {
	case *all:
		names = allNames()
	case *fig != "":
		for _, name := range strings.Split(*fig, ",") {
			name = strings.TrimSpace(name)
			if _, ok := drivers[name]; !ok {
				log.Fatalf("unknown figure %q; available: %s", name, available())
			}
			names = append(names, name)
		}
	default:
		fmt.Printf("available figures: %s\nrun with -fig <name> or -all\n", available())
		return
	}

	enc := json.NewEncoder(os.Stdout)
	for _, name := range names {
		// Figures drive registries on the process-default obs registry;
		// diffing the cumulative stage sums around the run attributes
		// commit-pipeline time to this figure without touching any driver.
		stagesBefore := contq.CommitStageSums(obs.Default())
		start := time.Now()
		t := drivers[name](cfg)
		elapsed := time.Since(start)
		if *jsonOut {
			run := jsonRun{
				Figure: name, Title: t.Title, Scale: cfg.Scale, Seed: cfg.Seed,
				Columns: t.Columns, Rows: t.Rows, Notes: t.Notes,
				ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
				CommitStageMS: stageDelta(stagesBefore, contq.CommitStageSums(obs.Default())),
			}
			if err := enc.Encode(run); err != nil {
				log.Fatal(err)
			}
			continue
		}
		t.Fprint(os.Stdout)
	}
}

func allNames() []string {
	names := make([]string, 0, len(drivers))
	for n := range drivers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func available() string { return strings.Join(allNames(), " ") }
