// Command benchdiff compares two gpbench -json runs and fails on elapsed
// time regressions — the comparison step of the CI bench gate. Both inputs
// are files of one JSON object per run (the gpbench -json format); runs
// are matched by figure name.
//
// A figure regresses when its elapsed_ms exceeds the baseline by more than
// -threshold (relative) AND by more than -min-ms (absolute); the absolute
// floor keeps sub-millisecond figures from tripping the gate on scheduler
// noise. Figures present on only one side are reported but never fail the
// gate (the suite may grow).
//
// -per-figure overrides the global pair for named figures, so a noisy or
// deliberately heavyweight figure can carry its own gate without loosening
// every other figure's: "net1=0.60+150,20d=0.40+100" gives net1 a 60%
// relative / 150ms absolute budget and 20d 40%/100ms, while the rest keep
// -threshold/-min-ms.
//
// -normalize rescales the baseline by the median current/baseline ratio
// before comparing, so a committed baseline measured on different hardware
// still gates meaningfully: a uniformly faster or slower machine shifts
// every figure alike and normalizes away, while a regression in one code
// path stands out against the fleet. The tradeoff — a change slowing every
// figure by the same factor is invisible in this mode — is the price of a
// machine-portable baseline.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_run.json
//	benchdiff -baseline old.json -current new.json -threshold 0.25 -min-ms 50 -normalize
//	benchdiff -baseline old.json -current new.json -per-figure "net1=0.60+150"
//
// Exit status: 0 when no figure regresses, 1 on regression, 2 on bad input.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// gate is one figure's regression budget: relative threshold and absolute
// slack, both of which must be exceeded to fail.
type gate struct {
	threshold float64
	minMS     float64
}

// parsePerFigure parses the -per-figure syntax: comma-separated
// "figure=threshold+minms" entries, e.g. "net1=0.60+150,20d=0.40+100".
func parsePerFigure(s string) (map[string]gate, error) {
	gates := make(map[string]gate)
	if s == "" {
		return gates, nil
	}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("per-figure entry %q: want figure=threshold+minms", entry)
		}
		rel, abs, ok := strings.Cut(spec, "+")
		if !ok {
			return nil, fmt.Errorf("per-figure entry %q: want figure=threshold+minms", entry)
		}
		g := gate{}
		var err error
		if g.threshold, err = strconv.ParseFloat(rel, 64); err != nil || g.threshold < 0 {
			return nil, fmt.Errorf("per-figure entry %q: bad threshold %q", entry, rel)
		}
		if g.minMS, err = strconv.ParseFloat(abs, 64); err != nil || g.minMS < 0 {
			return nil, fmt.Errorf("per-figure entry %q: bad min-ms %q", entry, abs)
		}
		if _, dup := gates[name]; dup {
			return nil, fmt.Errorf("per-figure entry %q: figure named twice", entry)
		}
		gates[name] = g
	}
	return gates, nil
}

// run mirrors the fields of gpbench's jsonRun that the gate needs.
type run struct {
	Figure    string  `json:"figure"`
	Scale     float64 `json:"scale"`
	Seed      int64   `json:"seed"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// CommitStageMS is gpbench's per-stage commit-pipeline breakdown
	// (validate/network/repair/journal/publish/total, cumulative ms),
	// absent for figures that never drove a registry.
	CommitStageMS map[string]float64 `json:"commit_stage_ms,omitempty"`
}

func readRuns(path string) (map[string]run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	runs := make(map[string]run)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var r run
		if err := json.Unmarshal(text, &r); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if r.Figure == "" {
			return nil, fmt.Errorf("%s:%d: run without figure name", path, line)
		}
		if prev, dup := runs[r.Figure]; dup {
			// Keep the faster of duplicate runs (best-of-N baselines).
			if r.ElapsedMS < prev.ElapsedMS {
				runs[r.Figure] = r
			}
			continue
		}
		runs[r.Figure] = r
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("%s: no runs", path)
	}
	return runs, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		baseline   = flag.String("baseline", "BENCH_baseline.json", "baseline gpbench -json file")
		current    = flag.String("current", "", "current gpbench -json file")
		threshold  = flag.Float64("threshold", 0.25, "relative elapsed_ms regression that fails the gate")
		minMS      = flag.Float64("min-ms", 50, "absolute elapsed_ms slack: smaller deltas never fail")
		perFigure  = flag.String("per-figure", "", `per-figure gate overrides: "fig=threshold+minms,..." (e.g. "net1=0.60+150")`)
		normalize  = flag.Bool("normalize", false, "rescale baseline by the median current/baseline ratio (cross-machine baselines)")
		history    = flag.String("history", "", "print the per-figure trend from a BENCH_history.ndjson file, then exit")
		histAppend = flag.String("history-append", "", "append this run's figures and verdict to a BENCH_history.ndjson file")
		commitSHA  = flag.String("commit", "", "commit id recorded in -history-append entries")
	)
	flag.Parse()
	if *history != "" {
		if err := printHistory(*history); err != nil {
			log.Println(err)
			os.Exit(2)
		}
		return
	}
	if *current == "" {
		log.Println("missing -current")
		flag.Usage()
		os.Exit(2)
	}
	gates, err := parsePerFigure(*perFigure)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	base, err := readRuns(*baseline)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	cur, err := readRuns(*current)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}

	figures := make([]string, 0, len(cur))
	for name := range cur {
		figures = append(figures, name)
	}
	sort.Strings(figures)

	scale := 1.0
	if *normalize {
		var ratios []float64
		for name, c := range cur {
			if b, ok := base[name]; ok && b.ElapsedMS > 0 {
				ratios = append(ratios, c.ElapsedMS/b.ElapsedMS)
			}
		}
		if len(ratios) >= 3 {
			sort.Float64s(ratios)
			scale = ratios[len(ratios)/2]
			fmt.Printf("normalizing baseline by median ratio %.3f\n", scale)
		} else {
			log.Printf("too few common figures (%d) to normalize; comparing raw", len(ratios))
		}
	}

	regressions := 0
	fmt.Printf("%-8s %12s %12s %8s  %s\n", "figure", "base ms", "cur ms", "ratio", "verdict")
	for _, name := range figures {
		c := cur[name]
		b, ok := base[name]
		if !ok {
			fmt.Printf("%-8s %12s %12.1f %8s  new (no baseline)\n", name, "-", c.ElapsedMS, "-")
			continue
		}
		if b.Scale != c.Scale || b.Seed != c.Seed {
			log.Printf("%s: baseline ran at scale=%g seed=%d, current at scale=%g seed=%d — not comparable",
				name, b.Scale, b.Seed, c.Scale, c.Seed)
			os.Exit(2)
		}
		ref := b.ElapsedMS * scale
		ratio := 0.0
		if ref > 0 {
			ratio = c.ElapsedMS / ref
		}
		g, custom := gates[name]
		if !custom {
			g = gate{threshold: *threshold, minMS: *minMS}
		}
		verdict := "ok"
		if c.ElapsedMS-ref > g.minMS && c.ElapsedMS > ref*(1+g.threshold) {
			verdict = fmt.Sprintf("REGRESSION (>%d%%)", int(g.threshold*100))
			regressions++
		}
		if custom {
			verdict += fmt.Sprintf(" [gate %d%%+%.0fms]", int(g.threshold*100), g.minMS)
		}
		fmt.Printf("%-8s %12.1f %12.1f %7.2fx  %s\n", name, ref, c.ElapsedMS, ratio, verdict)
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			fmt.Printf("%-8s  (missing from current run)\n", name)
		}
	}
	// Record the run in the trajectory history before any failure exit, so
	// regressed runs are part of the trend too.
	if *histAppend != "" {
		var scale float64
		var seed int64
		for _, c := range cur {
			scale, seed = c.Scale, c.Seed
			break
		}
		if err := appendHistory(*histAppend, *commitSHA, scale, seed, cur, regressions); err != nil {
			log.Printf("history append failed: %v", err)
		} else {
			fmt.Printf("appended run to %s\n", *histAppend)
		}
	}
	if regressions > 0 {
		log.Printf("%d figure(s) regressed beyond their gate (default %.0f%% + %.0fms)", regressions, *threshold*100, *minMS)
		os.Exit(1)
	}
}
