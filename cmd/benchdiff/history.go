package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Bench-trajectory history: each CI run appends one NDJSON line — the
// run's per-figure elapsed times plus the gate's verdict — to a
// BENCH_history.ndjson carried across runs (actions/cache) and uploaded
// as an artifact, so the per-commit bench trajectory stays queryable
// without a metrics service. -history renders the file as a per-figure
// trend table.

// historyEntry is one benchmarked run.
type historyEntry struct {
	Time    string             `json:"time"`
	Commit  string             `json:"commit,omitempty"`
	Scale   float64            `json:"scale"`
	Seed    int64              `json:"seed"`
	Verdict string             `json:"verdict"` // "ok" or "regression"
	Figures map[string]float64 `json:"figures"` // figure -> elapsed_ms
	// Stages records each figure's commit-pipeline breakdown (figure ->
	// stage -> cumulative ms), when the run's gpbench emitted one — so the
	// trajectory distinguishes "repair got slower" from "journal fsync got
	// slower" without rerunning old commits.
	Stages map[string]map[string]float64 `json:"stages,omitempty"`
}

// appendHistory appends one entry for the current run.
func appendHistory(path, commit string, scale float64, seed int64, cur map[string]run, regressions int) error {
	entry := historyEntry{
		Time:    time.Now().UTC().Format(time.RFC3339),
		Commit:  commit,
		Scale:   scale,
		Seed:    seed,
		Verdict: "ok",
		Figures: make(map[string]float64, len(cur)),
	}
	if regressions > 0 {
		entry.Verdict = "regression"
	}
	for name, r := range cur {
		entry.Figures[name] = r.ElapsedMS
		if len(r.CommitStageMS) > 0 {
			if entry.Stages == nil {
				entry.Stages = make(map[string]map[string]float64)
			}
			entry.Stages[name] = r.CommitStageMS
		}
	}
	line, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readHistory parses a history file, skipping malformed lines (a torn
// tail from an interrupted CI run must not break the trend).
func readHistory(path string) ([]historyEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var entries []historyEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e historyEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%s: no history entries", path)
	}
	return entries, nil
}

// printHistory renders the per-figure trend: one row per recorded run
// (oldest first), one column per figure, plus a first→last summary.
func printHistory(path string) error {
	entries, err := readHistory(path)
	if err != nil {
		return err
	}
	figSet := map[string]bool{}
	for _, e := range entries {
		for name := range e.Figures {
			figSet[name] = true
		}
	}
	figures := make([]string, 0, len(figSet))
	for name := range figSet {
		figures = append(figures, name)
	}
	sort.Strings(figures)

	fmt.Printf("%-20s %-10s %-10s", "time", "commit", "verdict")
	for _, name := range figures {
		fmt.Printf(" %10s", name)
	}
	fmt.Println()
	for _, e := range entries {
		commit := e.Commit
		if len(commit) > 9 {
			commit = commit[:9]
		}
		ts := e.Time
		if t, err := time.Parse(time.RFC3339, e.Time); err == nil {
			ts = t.Format("2006-01-02 15:04")
		}
		fmt.Printf("%-20s %-10s %-10s", ts, commit, e.Verdict)
		for _, name := range figures {
			if ms, ok := e.Figures[name]; ok {
				fmt.Printf(" %10.1f", ms)
			} else {
				fmt.Printf(" %10s", "-")
			}
		}
		fmt.Println()
	}

	if len(entries) > 1 {
		fmt.Printf("\ntrend over %d runs (first -> last):\n", len(entries))
		first, last := entries[0], entries[len(entries)-1]
		for _, name := range figures {
			a, okA := first.Figures[name]
			b, okB := last.Figures[name]
			if !okA || !okB || a <= 0 {
				continue
			}
			fmt.Printf("  %-8s %10.1f -> %10.1f ms  (%+.1f%%)\n", name, a, b, (b-a)/a*100)
		}
	}
	return nil
}
