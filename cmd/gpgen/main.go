// Command gpgen generates datasets for the matching tools and experiments:
// attributed data graphs (YouTube-like, Citation-like, or synthetic),
// random b-patterns anchored on a graph's attributes, and degree-biased
// update streams.
//
// Usage:
//
//	gpgen -kind youtube -scale 0.1 -out yt.graph
//	gpgen -kind synthetic -n 10000 -m 40000 -out syn.graph
//	gpgen -pattern -graph yt.graph -pnodes 4 -pedges 5 -preds 2 -k 3 -out p.pattern
//	gpgen -updates -graph yt.graph -inserts 500 -deletes 500 -out ups.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gpm/internal/generator"
	"gpm/internal/graph"
	"gpm/internal/pattern"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpgen: ")
	var (
		kind    = flag.String("kind", "synthetic", "graph kind: youtube | citation | synthetic")
		scale   = flag.Float64("scale", 0.1, "scale factor for youtube/citation (1.0 = paper size)")
		n       = flag.Int("n", 10000, "synthetic: number of nodes")
		m       = flag.Int("m", 40000, "synthetic: number of edges")
		alpha   = flag.Float64("alpha", 0, "synthetic: densification exponent (overrides -m when > 0)")
		labels  = flag.Int("labels", 8, "synthetic: label alphabet size")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output file (default stdout)")
		pat     = flag.Bool("pattern", false, "generate a pattern instead of a graph")
		ups     = flag.Bool("updates", false, "generate an update stream instead of a graph")
		gfile   = flag.String("graph", "", "graph file to anchor patterns/updates on")
		pnodes  = flag.Int("pnodes", 4, "pattern: |Vp|")
		pedges  = flag.Int("pedges", 5, "pattern: |Ep|")
		preds   = flag.Int("preds", 2, "pattern: predicates per node")
		k       = flag.Int("k", 3, "pattern: bound (1 = normal pattern)")
		star    = flag.Int("star", 10, "pattern: percent of unbounded edges when k > 1")
		dag     = flag.Bool("dag", false, "pattern: force acyclic")
		inserts = flag.Int("inserts", 100, "updates: number of insertions")
		deletes = flag.Int("deletes", 100, "updates: number of deletions")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	switch {
	case *pat:
		g := loadGraph(*gfile)
		params := generator.PatternParams{Nodes: *pnodes, Edges: *pedges, Preds: *preds, K: *k, StarFraction: *star}
		var p *pattern.Pattern
		if *dag {
			p = generator.DAGPattern(g, params, *seed)
		} else {
			p = generator.Pattern(g, params, *seed)
		}
		if err := p.Write(w); err != nil {
			log.Fatal(err)
		}
	case *ups:
		g := loadGraph(*gfile)
		stream := generator.Updates(g, *inserts, *deletes, *seed)
		if err := graph.WriteUpdates(w, stream); err != nil {
			log.Fatal(err)
		}
	default:
		var g *graph.Graph
		switch *kind {
		case "youtube":
			g = generator.YouTube(*scale, *seed)
		case "citation":
			g = generator.Citation(*scale, *seed)
		case "synthetic":
			if *alpha > 0 {
				g = generator.SyntheticAlpha(*n, *alpha, generator.DefaultSchema(*labels), *seed)
			} else {
				g = generator.Synthetic(*n, *m, generator.DefaultSchema(*labels), *seed)
			}
		default:
			log.Fatalf("unknown -kind %q", *kind)
		}
		if err := g.Write(w); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gpgen: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	}
}

func loadGraph(path string) *graph.Graph {
	if path == "" {
		log.Fatal("-graph is required for -pattern/-updates")
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	g, err := graph.Read(f)
	if err != nil {
		log.Fatal(err)
	}
	return g
}
